//! A text assembler for submitted kernels.
//!
//! Clients submit programs in exactly the syntax the disassembler prints
//! (`tinyisa::disassemble_op`), so any listing the toolchain emits can be
//! round-tripped back through the server:
//!
//! ```text
//! # comments run to end of line ('#' or ';')
//!         li x7, 1000
//! loop:                        # labels are identifiers ending in ':'
//!         addi x7, x7, -1
//!         ld8 x8, 16(x7)
//!         fcmplt x9, f0, f1
//!         bne x7, x0, loop     # branch targets: label or absolute pc
//!         halt
//! ```
//!
//! Registers are `x0`..`x31` and `f0`..`f31`; immediates are decimal or
//! `0x` hex; memory operands are `off(base)`; branch/jump/call targets are
//! label names or absolute byte addresses (hex or decimal) as printed by
//! the disassembler. The submitted kernel starts with zeroed registers and
//! memory and must initialize its own data — there is no loader.

use std::collections::BTreeMap;
use std::fmt;
use tinyisa::{Asm, FReg, Label, Program, Reg};

/// Why a submitted listing did not assemble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmTextError {
    /// 1-based source line the error was found on (0 for program-level
    /// errors such as an empty submission).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "asm: {}", self.message)
        } else {
            write!(f, "asm line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmTextError {}

fn err(line: usize, message: impl Into<String>) -> AsmTextError {
    AsmTextError { line, message: message.into() }
}

/// Hard cap on submitted program length; keeps a hostile submission from
/// ballooning server memory before admission control can see it.
pub const MAX_INSTS: usize = 4096;

/// Strip a comment and surrounding whitespace.
fn clean(line: &str) -> &str {
    let line = match line.find(['#', ';']) {
        Some(i) => &line[..i],
        None => line,
    };
    line.trim()
}

/// Parse an integer register `x0`..`x31`.
fn reg(line: usize, tok: &str) -> Result<Reg, AsmTextError> {
    let n = tok
        .strip_prefix('x')
        .and_then(|s| s.parse::<u8>().ok())
        .filter(|&n| (n as usize) < tinyisa::NUM_INT_REGS)
        .ok_or_else(|| err(line, format!("expected integer register x0..x31, got `{tok}`")))?;
    Ok(Reg(n))
}

/// Parse a float register `f0`..`f31`.
fn freg(line: usize, tok: &str) -> Result<FReg, AsmTextError> {
    let n = tok
        .strip_prefix('f')
        .and_then(|s| s.parse::<u8>().ok())
        .filter(|&n| (n as usize) < tinyisa::NUM_FP_REGS)
        .ok_or_else(|| err(line, format!("expected float register f0..f31, got `{tok}`")))?;
    Ok(FReg(n))
}

/// Parse a signed integer immediate (decimal or 0x hex).
fn imm(line: usize, tok: &str) -> Result<i64, AsmTextError> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = match body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        Some(hex) => i64::from_str_radix(hex, 16),
        None => body.parse::<i64>(),
    }
    .map_err(|_| err(line, format!("expected integer immediate, got `{tok}`")))?;
    Ok(if neg { -v } else { v })
}

/// Parse a shift amount (0..63).
fn shamt(line: usize, tok: &str) -> Result<u8, AsmTextError> {
    let v = imm(line, tok)?;
    u8::try_from(v)
        .ok()
        .filter(|&s| s < 64)
        .ok_or_else(|| err(line, format!("shift amount out of range: `{tok}`")))
}

/// Parse a float immediate.
fn fimm(line: usize, tok: &str) -> Result<f64, AsmTextError> {
    tok.parse::<f64>().map_err(|_| err(line, format!("expected float immediate, got `{tok}`")))
}

/// Parse a memory operand `off(base)`.
fn mem(line: usize, tok: &str) -> Result<(i64, Reg), AsmTextError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected memory operand off(base), got `{tok}`")))?;
    let close = tok
        .strip_suffix(')')
        .ok_or_else(|| err(line, format!("unclosed memory operand `{tok}`")))?;
    let off = if open == 0 { 0 } else { imm(line, &tok[..open])? };
    let base = reg(line, &close[open + 1..])?;
    Ok((off, base))
}

/// One instruction, split into mnemonic and comma-separated operands.
struct Line<'a> {
    source: usize,
    mnemonic: &'a str,
    operands: Vec<&'a str>,
}

/// A branch/jump/call target: a label name or an absolute byte address.
enum Target<'a> {
    Name(&'a str),
    Pc(u64),
}

fn target<'a>(line: usize, tok: &'a str) -> Result<Target<'a>, AsmTextError> {
    if tok.starts_with("0x") || tok.starts_with("0X") || tok.chars().all(|c| c.is_ascii_digit()) {
        let pc = match tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => tok.parse::<u64>(),
        }
        .map_err(|_| err(line, format!("bad branch target `{tok}`")))?;
        Ok(Target::Pc(pc))
    } else {
        Ok(Target::Name(tok))
    }
}

/// Assemble a submitted listing into a [`Program`].
///
/// # Errors
///
/// [`AsmTextError`] pinpointing the offending line: unknown mnemonics,
/// malformed operands, unknown or duplicate labels, out-of-range branch
/// targets, and oversized (> [`MAX_INSTS`]) or empty programs.
pub fn assemble(text: &str) -> Result<Program, AsmTextError> {
    // Pass 1: split labels from instructions, note each label's
    // instruction index.
    let mut labels: BTreeMap<&str, usize> = BTreeMap::new();
    let mut insts: Vec<Line<'_>> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let source = i + 1;
        let mut rest = clean(raw);
        // Any number of leading `name:` label definitions.
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty()
                || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                || name.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                break; // not a label — let the mnemonic parser complain
            }
            if labels.insert(name, insts.len()).is_some() {
                return Err(err(source, format!("duplicate label `{name}`")));
            }
            rest = tail[1..].trim_start();
        }
        if rest.is_empty() {
            continue;
        }
        let (mnemonic, tail) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
        let operands: Vec<&str> =
            tail.split(',').map(str::trim).filter(|t| !t.is_empty()).collect();
        insts.push(Line { source, mnemonic, operands });
        if insts.len() > MAX_INSTS {
            return Err(err(source, format!("program exceeds {MAX_INSTS} instructions")));
        }
    }
    if insts.is_empty() {
        return Err(err(0, "empty program"));
    }
    for (&name, &idx) in &labels {
        if idx >= insts.len() {
            return Err(err(0, format!("label `{name}` is bound past the last instruction")));
        }
    }

    // Pass 2: emit. Branch targets need `tinyisa::Label`s bound at their
    // target instruction, so allocate one per instruction index up front
    // and bind each as emission passes its index.
    let mut a = Asm::new();
    // `Asm::new()`'s documented text base; absolute-pc branch targets (the
    // form the disassembler emits) are mapped back through it.
    let base = 0x1_0000u64;
    let bound: Vec<Label> = (0..insts.len()).map(|_| a.label()).collect();
    let resolve = |line: usize, tok: &str| -> Result<Label, AsmTextError> {
        let idx = match target(line, tok)? {
            Target::Name(name) => *labels
                .get(name)
                .ok_or_else(|| err(line, format!("unknown label `{name}`")))?,
            Target::Pc(pc) => {
                if pc < base || (pc - base) % 4 != 0 {
                    return Err(err(line, format!("target {pc:#x} is not an instruction pc")));
                }
                ((pc - base) / 4) as usize
            }
        };
        bound
            .get(idx)
            .copied()
            .ok_or_else(|| err(line, format!("target `{tok}` is past the last instruction")))
    };

    for (idx, l) in insts.iter().enumerate() {
        a.bind(bound[idx]);
        let n = l.source;
        let ops = &l.operands;
        let want = |count: usize| -> Result<(), AsmTextError> {
            if ops.len() == count {
                Ok(())
            } else {
                Err(err(n, format!("{} takes {count} operands, got {}", l.mnemonic, ops.len())))
            }
        };
        match l.mnemonic {
            // Three-register integer ALU.
            "add" | "sub" | "and" | "or" | "xor" | "sll" | "srl" | "sra" | "slt" | "sltu"
            | "mul" | "mulh" | "div" | "rem" => {
                want(3)?;
                let (d, x, y) = (reg(n, ops[0])?, reg(n, ops[1])?, reg(n, ops[2])?);
                match l.mnemonic {
                    "add" => a.add(d, x, y),
                    "sub" => a.sub(d, x, y),
                    "and" => a.and(d, x, y),
                    "or" => a.or(d, x, y),
                    "xor" => a.xor(d, x, y),
                    "sll" => a.sll(d, x, y),
                    "srl" => a.srl(d, x, y),
                    "sra" => a.sra(d, x, y),
                    "slt" => a.slt(d, x, y),
                    "sltu" => a.sltu(d, x, y),
                    "mul" => a.mul(d, x, y),
                    "mulh" => a.mulh(d, x, y),
                    "div" => a.div(d, x, y),
                    _ => a.rem(d, x, y),
                }
            }
            // Register-immediate ALU.
            "addi" | "andi" | "ori" | "xori" | "slti" => {
                want(3)?;
                let (d, x, i) = (reg(n, ops[0])?, reg(n, ops[1])?, imm(n, ops[2])?);
                match l.mnemonic {
                    "addi" => a.addi(d, x, i),
                    "andi" => a.andi(d, x, i),
                    "ori" => a.ori(d, x, i),
                    "xori" => a.xori(d, x, i),
                    _ => a.slti(d, x, i),
                }
            }
            "slli" | "srli" | "srai" => {
                want(3)?;
                let (d, x, s) = (reg(n, ops[0])?, reg(n, ops[1])?, shamt(n, ops[2])?);
                match l.mnemonic {
                    "slli" => a.slli(d, x, s),
                    "srli" => a.srli(d, x, s),
                    _ => a.srai(d, x, s),
                }
            }
            "li" => {
                want(2)?;
                a.li(reg(n, ops[0])?, imm(n, ops[1])?);
            }
            "mov" => {
                want(2)?;
                a.mov(reg(n, ops[0])?, reg(n, ops[1])?);
            }
            // Floating point.
            "fadd" | "fsub" | "fmul" | "fdiv" | "fmin" | "fmax" => {
                want(3)?;
                let (d, x, y) = (freg(n, ops[0])?, freg(n, ops[1])?, freg(n, ops[2])?);
                match l.mnemonic {
                    "fadd" => a.fadd(d, x, y),
                    "fsub" => a.fsub(d, x, y),
                    "fmul" => a.fmul(d, x, y),
                    "fdiv" => a.fdiv(d, x, y),
                    "fmin" => a.fmin(d, x, y),
                    _ => a.fmax(d, x, y),
                }
            }
            "fsqrt" | "fabs" | "fneg" | "fmov" => {
                want(2)?;
                let (d, x) = (freg(n, ops[0])?, freg(n, ops[1])?);
                match l.mnemonic {
                    "fsqrt" => a.fsqrt(d, x),
                    "fabs" => a.fabs(d, x),
                    "fneg" => a.fneg(d, x),
                    _ => a.fmov(d, x),
                }
            }
            "fli" => {
                want(2)?;
                a.fli(freg(n, ops[0])?, fimm(n, ops[1])?);
            }
            "fcvt.i.f" => {
                want(2)?;
                a.fcvtif(freg(n, ops[0])?, reg(n, ops[1])?);
            }
            "fcvt.f.i" => {
                want(2)?;
                a.fcvtfi(reg(n, ops[0])?, freg(n, ops[1])?);
            }
            "fcmplt" | "fcmple" | "fcmpeq" => {
                want(3)?;
                let (d, x, y) = (reg(n, ops[0])?, freg(n, ops[1])?, freg(n, ops[2])?);
                match l.mnemonic {
                    "fcmplt" => a.fcmplt(d, x, y),
                    "fcmple" => a.fcmple(d, x, y),
                    _ => a.fcmpeq(d, x, y),
                }
            }
            // Memory.
            "ld1" | "ld2" | "ld4" | "ld8" => {
                want(2)?;
                let d = reg(n, ops[0])?;
                let (off, b) = mem(n, ops[1])?;
                match l.mnemonic {
                    "ld1" => a.ld1(d, b, off),
                    "ld2" => a.ld2(d, b, off),
                    "ld4" => a.ld4(d, b, off),
                    _ => a.ld8(d, b, off),
                }
            }
            "st1" | "st2" | "st4" | "st8" => {
                want(2)?;
                let s = reg(n, ops[0])?;
                let (off, b) = mem(n, ops[1])?;
                match l.mnemonic {
                    "st1" => a.st1(s, b, off),
                    "st2" => a.st2(s, b, off),
                    "st4" => a.st4(s, b, off),
                    _ => a.st8(s, b, off),
                }
            }
            "ldf" => {
                want(2)?;
                let d = freg(n, ops[0])?;
                let (off, b) = mem(n, ops[1])?;
                a.ldf(d, b, off);
            }
            "stf" => {
                want(2)?;
                let s = freg(n, ops[0])?;
                let (off, b) = mem(n, ops[1])?;
                a.stf(s, b, off);
            }
            // Control.
            "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
                want(3)?;
                let (x, y) = (reg(n, ops[0])?, reg(n, ops[1])?);
                let t = resolve(n, ops[2])?;
                match l.mnemonic {
                    "beq" => a.beq(x, y, t),
                    "bne" => a.bne(x, y, t),
                    "blt" => a.blt(x, y, t),
                    "bge" => a.bge(x, y, t),
                    "bltu" => a.bltu(x, y, t),
                    _ => a.bgeu(x, y, t),
                }
            }
            "jmp" | "call" => {
                want(1)?;
                let t = resolve(n, ops[0])?;
                if l.mnemonic == "jmp" {
                    a.jmp(t);
                } else {
                    a.call(t);
                }
            }
            "jr" | "callr" => {
                want(1)?;
                let r = reg(n, ops[0])?;
                if l.mnemonic == "jr" {
                    a.jr(r);
                } else {
                    a.callr(r);
                }
            }
            "ret" => {
                want(0)?;
                a.ret();
            }
            "halt" => {
                want(0)?;
                a.halt();
            }
            other => return Err(err(n, format!("unknown mnemonic `{other}`"))),
        }
    }

    a.assemble().map_err(|e| err(0, format!("assembly failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_disassembled_listing() {
        let text = "
            li x7, 1000
        loop:
            addi x7, x7, -1
            mul x8, x7, x7
            fli f0, 1.5
            fadd f1, f0, f0
            bne x7, x0, loop
            halt
        ";
        let p = assemble(text).expect("assembles");
        // Strip the per-line `pc:` prefix the listing carries and feed the
        // text back through: same instruction count, same listing.
        let listing = p.disassemble();
        let stripped: String = listing
            .lines()
            .map(|l| l.split_once(':').map(|(_, t)| t.trim()).unwrap_or(l))
            .collect::<Vec<_>>()
            .join("\n");
        let p2 = assemble(&stripped).expect("round-trips");
        assert_eq!(p.disassemble(), p2.disassemble());
    }

    #[test]
    fn absolute_pc_targets_match_labels() {
        // `bne ... loop` and `bne ... 0x10004` must produce the same program.
        let a = assemble("li x7, 9\nloop:\naddi x7, x7, -1\nbne x7, x0, loop\nhalt").unwrap();
        let b = assemble("li x7, 9\naddi x7, x7, -1\nbne x7, x0, 0x10004\nhalt").unwrap();
        assert_eq!(a.disassemble(), b.disassemble());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("li x7, 5\nfrobnicate x1, x2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"), "{e}");
        let e = assemble("ld8 x1, 16(f3)\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = assemble("beq x1, x2, nowhere\nhalt").unwrap_err();
        assert!(e.message.contains("nowhere"), "{e}");
        let e = assemble("   # only comments\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("empty"), "{e}");
    }

    #[test]
    fn memory_and_shift_operands_parse() {
        let p = assemble("li x5, 0x100\nld8 x6, -8(x5)\nst4 x6, (x5)\nslli x6, x6, 3\nhalt")
            .unwrap();
        let text = p.disassemble();
        assert!(text.contains("ld8 x6, -8(x5)"), "{text}");
        assert!(text.contains("st4 x6, 0(x5)"), "{text}");
        assert!(text.contains("slli x6, x6, 3"), "{text}");
    }

    #[test]
    fn runs_on_the_vm() {
        let p = assemble("li x7, 50\nloop:\naddi x7, x7, -1\nbne x7, x0, loop\nhalt").unwrap();
        let mut vm = tinyisa::Vm::new(p);
        let mut sink = tinyisa::CountingSink::default();
        let exit = vm.run(&mut sink, 10_000).unwrap();
        assert_eq!(exit, tinyisa::RunExit::Halted);
        assert_eq!(vm.retired(), 1 + 50 * 2 + 1);
    }
}

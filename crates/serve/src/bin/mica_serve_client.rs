//! `mica-serve-client`: submit one query and print the response.
//!
//! ```text
//! mica-serve-client --kind table --name MiBench/sha/large --k 3
//! mica-serve-client --kind zoo --name MiBench/sha/large --seed 7 --scale 0.5
//! mica-serve-client --kind asm --asm-file kernel.s --deadline-ms 500
//! mica-serve-client --kind ops --op metrics --json
//! ```
//!
//! Default output is a human-readable summary that always leads with the
//! correlation id, the status, and the server-echoed trace id — on *every*
//! outcome, including `overloaded`/`draining` rejections that exhausted
//! the retry budget — so a client-side log line can always be joined with
//! the server's spans and access log. `--json` prints the raw response
//! line instead.
//!
//! Exit status: 0 for an `ok` answer, 2 for a definitive non-`ok` answer
//! (`error`/`panic`/`deadline`), 1 when retries were exhausted or the
//! arguments were bad. Backpressure (`overloaded`/`draining`) is retried
//! with capped jittered backoff, honoring the server's `retry_after_ms`.

use mica_serve::client::ClientError;
use mica_serve::protocol::{status, Request, RequestKind, Response};

struct Args {
    addr: String,
    retries: u32,
    json: bool,
    req: Request,
}

fn usage() -> ! {
    eprintln!(
        "usage: mica-serve-client --kind <table|zoo|asm|ops> [options]\n\
         \n\
         options:\n\
           --addr HOST:PORT     server address (default MICA_SERVE_ADDR or 127.0.0.1:7033)\n\
           --id ID              correlation id (default q0)\n\
           --name SUITE/PROG/IN benchmark name (table, zoo)\n\
           --seed N             zoo data-seed override\n\
           --scale X            zoo budget-scale override\n\
           --asm-file PATH      tinyisa assembly listing (asm); `-` for stdin\n\
           --budget N           asm dynamic-instruction budget\n\
           --deadline-ms N      per-request deadline\n\
           --k N                neighbors to return (default 5)\n\
           --metric NAME        euclidean (default) or cosine\n\
           --op NAME            ops query: health, ready, metrics or stats\n\
           --json               print the raw response line instead of a summary\n\
           --retries N          extra attempts on backpressure (default 5)"
    );
    std::process::exit(1);
}

fn parse_args() -> Args {
    let mut addr =
        std::env::var("MICA_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7033".to_string());
    let mut retries = 5u32;
    let mut json = false;
    let mut id = "q0".to_string();
    let mut kind: Option<RequestKind> = None;
    let mut name = None;
    let mut seed = None;
    let mut scale = None;
    let mut asm = None;
    let mut budget = None;
    let mut deadline_ms = None;
    let mut k = None;
    let mut metric = None;
    let mut op = None;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| -> String {
            argv.next().unwrap_or_else(|| {
                eprintln!("{flag} needs {what}");
                std::process::exit(1);
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("an address"),
            "--id" => id = value("an id"),
            "--kind" => {
                kind = match value("table, zoo, asm or ops").as_str() {
                    "table" => Some(RequestKind::Table),
                    "zoo" => Some(RequestKind::Zoo),
                    "asm" => Some(RequestKind::Asm),
                    "ops" => Some(RequestKind::Ops),
                    other => {
                        eprintln!("unknown kind `{other}`");
                        std::process::exit(1);
                    }
                }
            }
            "--name" => name = Some(value("a benchmark name")),
            "--seed" => seed = Some(parse_num(&value("a seed"))),
            "--scale" => {
                scale = Some(value("a scale").parse::<f64>().unwrap_or_else(|_| {
                    eprintln!("--scale needs a number");
                    std::process::exit(1);
                }))
            }
            "--asm-file" => {
                let path = value("a path");
                let text = if path == "-" {
                    use std::io::Read;
                    let mut buf = String::new();
                    std::io::stdin().read_to_string(&mut buf).map(|_| buf)
                } else {
                    std::fs::read_to_string(&path)
                };
                asm = Some(text.unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }));
            }
            "--budget" => budget = Some(parse_num(&value("a budget"))),
            "--deadline-ms" => deadline_ms = Some(parse_num(&value("milliseconds"))),
            "--k" => k = Some(parse_num(&value("a count"))),
            "--metric" => metric = Some(value("a metric name")),
            "--op" => op = Some(value("an ops query name")),
            "--json" => json = true,
            "--retries" => retries = parse_num(&value("a count")) as u32,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }

    let Some(kind) = kind else {
        eprintln!("--kind is required");
        usage();
    };
    let mut req = Request::new(id, kind);
    req.name = name;
    req.seed = seed;
    req.scale = scale;
    req.asm = asm;
    req.budget = budget;
    req.deadline_ms = deadline_ms;
    req.k = k;
    req.metric = metric;
    req.op = op;
    Args { addr, retries, json, req }
}

fn parse_num(s: &str) -> u64 {
    s.parse().unwrap_or_else(|_| {
        eprintln!("`{s}` is not a non-negative integer");
        std::process::exit(1);
    })
}

/// Print one response. The summary's first line is always
/// `<id> <status> trace=<trace>` so logs join against the server's access
/// log and span trees; `--json` emits the raw wire line instead.
fn print_outcome(resp: &Response, json: bool) {
    if json {
        println!("{}", mica_serve::protocol::render_response(resp));
        return;
    }
    println!("{} {} trace={}", resp.id, resp.status, resp.trace.as_deref().unwrap_or("-"));
    if let Some(e) = &resp.error {
        println!("  error: {e}");
    }
    if let Some(ms) = resp.retry_after_ms {
        println!("  retry_after_ms: {ms}");
    }
    if let Some(payload) = &resp.ops {
        println!("{payload}");
    }
    if let Some(result) = &resp.result {
        println!(
            "  {} cached={} instructions={} metric={}",
            result.name, result.cached, result.executed_instructions, result.metric
        );
        for n in &result.neighbors {
            println!("  neighbor {} distance={:.6}", n.name, n.distance);
        }
    }
}

fn main() {
    let args = parse_args();
    match mica_serve::client::query(&args.addr, &args.req, args.retries) {
        Ok(resp) => {
            print_outcome(&resp, args.json);
            if resp.status != status::OK {
                std::process::exit(2);
            }
        }
        Err(e) => {
            // Exhausted backpressure still carries the server's last
            // rejection — print it (id, status, trace) before giving up.
            if let ClientError::Exhausted(resp) = &e {
                print_outcome(resp, args.json);
            }
            eprintln!("mica-serve-client: {e}");
            std::process::exit(1);
        }
    }
}

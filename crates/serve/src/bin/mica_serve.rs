//! The `mica-serve` daemon.
//!
//! Boots the engine (profiling the reference table if `profiles.json` is
//! cold), binds `MICA_SERVE_ADDR`, and serves until SIGTERM/SIGINT drains
//! it. Exits 0 after a clean drain with a one-line account on stderr; the
//! full [`mica_serve::server::DrainSummary`] goes to
//! `<results>/serve-drain.json`.

fn main() {
    mica_serve::server::install_signal_handlers();
    let cfg = mica_serve::ServeConfig::from_env();
    match mica_serve::server::serve(cfg) {
        Ok(summary) => {
            eprintln!(
                "mica-serve drained: {} accepted ({} ok, {} error, {} panic, {} deadline), \
                 {} rejected overloaded, {} rejected draining, {} index entries, \
                 SLO {}/{} ({:.4} of target {}), {:.1}s",
                summary.accepted,
                summary.ok,
                summary.errors,
                summary.panics,
                summary.deadline_exceeded,
                summary.rejected_overloaded,
                summary.rejected_draining,
                summary.index_entries,
                summary.slo_good,
                summary.slo_total,
                summary.slo_attainment,
                summary.slo_target,
                summary.wall_s,
            );
        }
        Err(e) => {
            eprintln!("mica-serve: {e}");
            std::process::exit(1);
        }
    }
}

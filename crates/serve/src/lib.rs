//! `mica-serve`: characterization-as-a-service.
//!
//! The paper's core question — *is this new kernel redundant with the
//! existing suite?* — is naturally an online query. This crate turns the
//! batch pipeline into a long-running daemon: clients submit a tinyisa
//! assembly kernel or a parameterized zoo instance over TCP (one JSON
//! object per line, see [`protocol`]) and receive its 47-metric MICA
//! vector, its projection into the 8-dimensional GA space, and its k
//! nearest neighbors among the 122 reference benchmarks.
//!
//! The hard part is not the query — it is staying up. The server wraps
//! every submission in a robustness envelope:
//!
//! - **Admission control + backpressure** ([`server`]): a bounded request
//!   queue (`MICA_SERVE_QUEUE`) with explicit `overloaded` rejections
//!   carrying a `retry_after_ms` hint, plus a load-shedding watermark
//!   (`MICA_SERVE_WATERMARK`) above which expensive submissions are shed
//!   while cheap cache-served lookups still pass. Memory use is bounded by
//!   construction.
//! - **Per-request deadlines** ([`engine`]): each request's VM fuel budget
//!   is capped by what its deadline can justify
//!   (`MICA_SERVE_FUEL_PER_MS`), execution is sliced
//!   ([`mica_experiments::profile::characterize_vm_sliced`]) and a
//!   wall-clock watchdog cancels work past its deadline — timed-out work
//!   is reported with a structured `deadline` status, never leaked.
//! - **Per-request quarantine**: submissions run under
//!   [`mica_par::par_map_isolated`], so a panicking kernel (including one
//!   injected via `MICA_FAULTS=panic:request=N`) returns a structured
//!   `panic` response while the pool and the server keep serving.
//! - **Graceful drain**: SIGTERM / ctrl-c stops admission (`draining`
//!   rejections), finishes in-flight work, flushes the observability
//!   sinks, the sharded submission index, and a schema-stable drain
//!   summary via [`mica_fault::atomic_write_retry`], then exits 0.
//! - **A live ops plane + SLO tracking** ([`server`]): `ops` requests
//!   (`health`/`ready`/`metrics`/`stats`) bypass the queue and keep
//!   answering during a drain; every response echoes a `trace` id tying
//!   it to its span tree in the `MICA_TRACE`/`MICA_EVENTS` sinks; every
//!   served request lands in a JSONL access log
//!   (`<results>/serve-access.jsonl`); and a `MICA_SERVE_SLO_MS` /
//!   `MICA_SERVE_SLO_TARGET` latency objective is tracked both over the
//!   rolling last-minute window (`stats`, `metrics`) and for the whole
//!   run ([`server::DrainSummary`], audited offline by `mica-prof slo`).
//! - **A retrying client** ([`client`], `mica-serve-client`): capped
//!   exponential backoff with deterministic site-seeded jitter
//!   ([`mica_fault::io::backoff_ms`]), honoring `retry_after_ms` hints.
//!
//! Every answer carries a sprout-style [`protocol::Provenance`] block —
//! table fingerprint, profile fingerprint, budget scale, backend, thread
//! count, GA selection, and the `MICA_*` environment — so two answers
//! taken months apart compare honestly or visibly don't.
//!
//! Environment knobs (all optional):
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `MICA_SERVE_ADDR` | `127.0.0.1:7033` | listen address |
//! | `MICA_SERVE_QUEUE` | 32 | admission queue capacity |
//! | `MICA_SERVE_WATERMARK` | 3/4 of queue | shed expensive work above this depth |
//! | `MICA_SERVE_DEADLINE_MS` | 2000 | default per-request deadline |
//! | `MICA_SERVE_MAX_DEADLINE_MS` | 30000 | deadline ceiling |
//! | `MICA_SERVE_FUEL_PER_MS` | 20000 | VM instructions a deadline millisecond buys |
//! | `MICA_SERVE_SLICE` | 50000 | fuel slice between cancellation checks |
//! | `MICA_SERVE_RETRY_MS` | 25 | base `retry_after_ms` backpressure hint |
//! | `MICA_SERVE_SLO_MS` | 1000 | latency objective: an answered request is SLO-good iff `ok` within this |
//! | `MICA_SERVE_SLO_TARGET` | 0.99 | attainment objective in `[0, 1)`; burn rate is measured against it |
//!
//! The profile cache, budget scale, backend, and thread pool are shared
//! with the batch pipeline (`MICA_RESULTS_DIR`, `MICA_SCALE`,
//! `MICA_BACKEND`, `MICA_THREADS`), so a `table` query answers with the
//! byte-identical vector the batch run wrote to `profiles.json`.

pub mod asmtext;
pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;

/// Read a `u64` environment knob, warning on (and ignoring) garbage.
fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("warning: ignoring invalid {name}={v:?}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Server tunables, resolved once at startup. `from_env` reads the
/// `MICA_SERVE_*` variables; tests construct the struct directly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`MICA_SERVE_ADDR`), e.g. `127.0.0.1:7033`. Port 0
    /// binds an ephemeral port (tests).
    pub addr: String,
    /// Admission queue capacity (`MICA_SERVE_QUEUE`).
    pub queue_cap: usize,
    /// Queue depth at which expensive submissions are shed
    /// (`MICA_SERVE_WATERMARK`).
    pub watermark: usize,
    /// Default deadline for requests that don't set one
    /// (`MICA_SERVE_DEADLINE_MS`).
    pub default_deadline_ms: u64,
    /// Ceiling a request's deadline is clamped to
    /// (`MICA_SERVE_MAX_DEADLINE_MS`).
    pub max_deadline_ms: u64,
    /// VM instructions one deadline millisecond buys
    /// (`MICA_SERVE_FUEL_PER_MS`) — the deadline-derived fuel budget.
    pub fuel_per_ms: u64,
    /// Fuel slice between cancellation checks (`MICA_SERVE_SLICE`).
    pub slice: u64,
    /// Base backpressure hint in `retry_after_ms` (`MICA_SERVE_RETRY_MS`).
    pub retry_ms: u64,
    /// Latency objective (`MICA_SERVE_SLO_MS`): an answered request is
    /// SLO-good iff it is `ok` and its admission-to-response latency is at
    /// most this many milliseconds.
    pub slo_ms: u64,
    /// Attainment objective (`MICA_SERVE_SLO_TARGET`), a fraction in
    /// `[0, 1)`. Burn rate = (1 − attainment) / (1 − target): 1.0 means
    /// the error budget is being spent exactly at the sustainable rate.
    pub slo_target: f64,
}

impl ServeConfig {
    /// Resolve every knob from the environment.
    pub fn from_env() -> ServeConfig {
        let queue_cap = env_u64("MICA_SERVE_QUEUE", 32) as usize;
        let watermark = match std::env::var("MICA_SERVE_WATERMARK") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("warning: ignoring invalid MICA_SERVE_WATERMARK={v:?}");
                    queue_cap * 3 / 4
                }
            },
            Err(_) => queue_cap * 3 / 4,
        };
        let slo_target = match std::env::var("MICA_SERVE_SLO_TARGET") {
            Ok(v) => match v.trim().parse::<f64>() {
                Ok(t) if (0.0..1.0).contains(&t) => t,
                _ => {
                    eprintln!("warning: ignoring invalid MICA_SERVE_SLO_TARGET={v:?} (want [0, 1))");
                    0.99
                }
            },
            Err(_) => 0.99,
        };
        ServeConfig {
            addr: std::env::var("MICA_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7033".into()),
            queue_cap,
            watermark: watermark.clamp(1, queue_cap),
            default_deadline_ms: env_u64("MICA_SERVE_DEADLINE_MS", 2_000),
            max_deadline_ms: env_u64("MICA_SERVE_MAX_DEADLINE_MS", 30_000),
            fuel_per_ms: env_u64("MICA_SERVE_FUEL_PER_MS", 20_000),
            slice: env_u64("MICA_SERVE_SLICE", 50_000),
            retry_ms: env_u64("MICA_SERVE_RETRY_MS", 25),
            slo_ms: env_u64("MICA_SERVE_SLO_MS", 1_000),
            slo_target,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7033".into(),
            queue_cap: 32,
            watermark: 24,
            default_deadline_ms: 2_000,
            max_deadline_ms: 30_000,
            fuel_per_ms: 20_000,
            slice: 50_000,
            retry_ms: 25,
            slo_ms: 1_000,
            slo_target: 0.99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.watermark <= c.queue_cap);
        assert!(c.default_deadline_ms <= c.max_deadline_ms);
        assert!(c.fuel_per_ms >= 1 && c.slice >= 1);
        assert!(c.slo_ms >= 1 && (0.0..1.0).contains(&c.slo_target));
    }

    #[test]
    fn from_env_falls_back_on_defaults() {
        // Only defaulted paths are exercised here: env-mutating coverage
        // lives in the e2e test, which owns the process environment.
        let c = ServeConfig::from_env();
        assert!(c.queue_cap >= 1);
        assert!(c.watermark >= 1 && c.watermark <= c.queue_cap);
    }
}

//! The wire protocol: one JSON object per line, both directions.
//!
//! Requests are parsed **leniently** by hand (unknown fields ignored,
//! optional fields defaulted) so old clients keep working as the protocol
//! grows; responses are emitted with *every* field present (`null` for
//! absent options) so the strict derived deserializer on the client side
//! — and any other consumer — can rely on the full shape.
//!
//! ```text
//! → {"id":"q1","kind":"table","name":"MiBench/sha/large","k":3}
//! → {"id":"q2","kind":"zoo","name":"MiBench/sha/large","seed":7,"scale":0.5}
//! → {"id":"q3","kind":"asm","asm":"li x7, 99\nloop:\naddi x7, x7, -1\nbne x7, x0, loop\nhalt","budget":50000,"deadline_ms":500}
//! → {"id":"q4","kind":"ops","op":"metrics"}
//! ← {"id":"q1","status":"ok","error":null,"retry_after_ms":null,"result":{...},"provenance":{...},"trace":"0123456789abcdef","ops":null}
//! ```
//!
//! Statuses: `ok`, `error` (bad request / failed execution), `panic`
//! (submission quarantined), `deadline` (cancelled past its deadline),
//! `overloaded` and `draining` (admission rejections; `retry_after_ms`
//! hints when to retry).
//!
//! The `ops` family (`op`: `health`, `ready`, `metrics`, `stats`) is
//! answered on the reader thread, bypasses the admission queue entirely,
//! and keeps answering during a drain — it is the daemon's live control
//! plane, not a submission. Its payload rides in the `ops` field.
//!
//! Every response also echoes a server-minted `trace` id (16 lowercase
//! hex digits) identifying the request's span tree in the `MICA_TRACE` /
//! `MICA_EVENTS` sinks, so client logs correlate with server traces.

use serde::value::Value;
use serde::{DeError, Deserialize, Serialize};

/// What kind of submission a request carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A benchmark of the reference table by name — answered from the
    /// warm profile set, byte-identical to the batch pipeline.
    Table,
    /// A re-parameterized zoo instance: a table benchmark's kernel with a
    /// custom data seed and/or budget scale.
    Zoo,
    /// A tinyisa assembly listing (see [`crate::asmtext`]).
    Asm,
    /// A control-plane query (`op`: `health`/`ready`/`metrics`/`stats`),
    /// answered immediately on the reader thread — never queued, never
    /// refused during a drain.
    Ops,
}

impl RequestKind {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Table => "table",
            RequestKind::Zoo => "zoo",
            RequestKind::Asm => "asm",
            RequestKind::Ops => "ops",
        }
    }

    fn parse(s: &str) -> Option<RequestKind> {
        match s {
            "table" => Some(RequestKind::Table),
            "zoo" => Some(RequestKind::Zoo),
            "asm" => Some(RequestKind::Asm),
            "ops" => Some(RequestKind::Ops),
            _ => None,
        }
    }
}

/// One client submission.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: String,
    /// Submission kind.
    pub kind: RequestKind,
    /// `table`/`zoo`: full `suite/program/input` benchmark name.
    pub name: Option<String>,
    /// `zoo`: data-seed override (defaults to the table seed).
    pub seed: Option<u64>,
    /// `zoo`: budget-scale override (defaults to the server's
    /// `MICA_SCALE`).
    pub scale: Option<f64>,
    /// `asm`: the assembly listing.
    pub asm: Option<String>,
    /// `asm`: dynamic-instruction budget (defaults to the deadline-derived
    /// fuel allowance).
    pub budget: Option<u64>,
    /// Per-request deadline in milliseconds (defaults to the server's
    /// `MICA_SERVE_DEADLINE_MS`, clamped to `MICA_SERVE_MAX_DEADLINE_MS`).
    pub deadline_ms: Option<u64>,
    /// Neighbors to return (default 5).
    pub k: Option<u64>,
    /// Distance metric: `euclidean` (default) or `cosine`.
    pub metric: Option<String>,
    /// `ops`: which control-plane query to answer (`health`, `ready`,
    /// `metrics` or `stats`; defaults to `health`).
    pub op: Option<String>,
}

impl Request {
    /// A minimal request of the given kind (tests and client builders).
    pub fn new(id: impl Into<String>, kind: RequestKind) -> Request {
        Request {
            id: id.into(),
            kind,
            name: None,
            seed: None,
            scale: None,
            asm: None,
            budget: None,
            deadline_ms: None,
            k: None,
            metric: None,
            op: None,
        }
    }
}

fn get_str(v: &Value, field: &str) -> Result<Option<String>, DeError> {
    match v.field(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.clone())),
        Some(other) => Err(DeError::new(format!("`{field}` must be a string, got {}", other.kind()))),
    }
}

fn get_u64(v: &Value, field: &str) -> Result<Option<u64>, DeError> {
    match v.field(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Number(n)) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| DeError::new(format!("`{field}` must be a non-negative integer"))),
        Some(other) => Err(DeError::new(format!("`{field}` must be a number, got {}", other.kind()))),
    }
}

fn get_f64(v: &Value, field: &str) -> Result<Option<f64>, DeError> {
    match v.field(field) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Number(n)) => Ok(Some(n.as_f64())),
        Some(other) => Err(DeError::new(format!("`{field}` must be a number, got {}", other.kind()))),
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.as_object().is_none() {
            return Err(DeError::new(format!("request must be an object, got {}", v.kind())));
        }
        let id = get_str(v, "id")?.ok_or_else(|| DeError::new("request is missing `id`"))?;
        let kind = get_str(v, "kind")?.ok_or_else(|| DeError::new("request is missing `kind`"))?;
        let kind = RequestKind::parse(&kind).ok_or_else(|| {
            DeError::new(format!("unknown kind `{kind}` (want table, zoo, asm or ops)"))
        })?;
        Ok(Request {
            id,
            kind,
            name: get_str(v, "name")?,
            seed: get_u64(v, "seed")?,
            scale: get_f64(v, "scale")?,
            asm: get_str(v, "asm")?,
            budget: get_u64(v, "budget")?,
            deadline_ms: get_u64(v, "deadline_ms")?,
            k: get_u64(v, "k")?,
            metric: get_str(v, "metric")?,
            op: get_str(v, "op")?,
        })
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        fn opt<T: Serialize>(v: &Option<T>) -> Value {
            v.as_ref().map(Serialize::to_value).unwrap_or(Value::Null)
        }
        Value::Object(vec![
            ("id".into(), Value::String(self.id.clone())),
            ("kind".into(), Value::String(self.kind.name().into())),
            ("name".into(), opt(&self.name)),
            ("seed".into(), opt(&self.seed)),
            ("scale".into(), opt(&self.scale)),
            ("asm".into(), opt(&self.asm)),
            ("budget".into(), opt(&self.budget)),
            ("deadline_ms".into(), opt(&self.deadline_ms)),
            ("k".into(), opt(&self.k)),
            ("metric".into(), opt(&self.metric)),
            ("op".into(), opt(&self.op)),
        ])
    }
}

/// Response status codes, as strings on the wire (the compat serde derive
/// only covers unit enums in structs it can see whole; statuses stay
/// strings so unknown future codes degrade gracefully client-side).
pub mod status {
    /// Query answered.
    pub const OK: &str = "ok";
    /// Bad request or failed execution; `error` explains.
    pub const ERROR: &str = "error";
    /// The submission panicked and was quarantined.
    pub const PANIC: &str = "panic";
    /// The submission exceeded its deadline and was cancelled.
    pub const DEADLINE: &str = "deadline";
    /// Admission queue full or shedding; retry after `retry_after_ms`.
    pub const OVERLOADED: &str = "overloaded";
    /// Server is draining; this request was rejected.
    pub const DRAINING: &str = "draining";
}

/// One neighbor on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborEntry {
    /// Reference benchmark name.
    pub name: String,
    /// Distance under the requested metric.
    pub distance: f64,
}

/// The answer to a successful query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Canonical name of what was characterized.
    pub name: String,
    /// The 47-metric MICA vector (raw values).
    pub vector: Vec<f64>,
    /// Projection into the z-scored 8-dimensional GA space.
    pub projection: Vec<f64>,
    /// `k` nearest reference benchmarks, ascending by distance.
    pub neighbors: Vec<NeighborEntry>,
    /// Distance metric the neighbors were ranked under.
    pub metric: String,
    /// Dynamic instructions executed to characterize this submission
    /// (0 when answered from a cache).
    pub executed_instructions: u64,
    /// Whether the vector came from the warm profile set or the
    /// submission index instead of a fresh simulation.
    pub cached: bool,
}

/// One `MICA_*` environment variable captured in the provenance block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvEntry {
    /// Variable name.
    pub name: String,
    /// Its value at server start.
    pub value: String,
}

/// The sprout-style provenance block: everything needed to decide whether
/// two answers, possibly taken months apart, are comparable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Server build: crate name and version.
    pub server: String,
    /// Fingerprint of the benchmark table the server was built with.
    pub table_fingerprint: u64,
    /// Fingerprint of the profile layout (table × metric count).
    pub profile_fingerprint: u64,
    /// Budget scale of the warm profile set (`MICA_SCALE`).
    pub scale: f64,
    /// Analyzer backend (`MICA_BACKEND`).
    pub backend: String,
    /// Worker-pool width.
    pub threads: u64,
    /// GA-selected metric indices defining the projection space.
    pub selected_metrics: Vec<u64>,
    /// The GA's correlation fitness ρ for that selection.
    pub ga_rho: f64,
    /// `MICA_*` environment at server start, sorted by name.
    pub env: Vec<EnvEntry>,
}

/// One server reply. Every field is always present on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request's correlation id (`"?"` when the request line did not
    /// parse far enough to recover one).
    pub id: String,
    /// One of the [`status`] codes.
    pub status: String,
    /// Human-readable diagnostics for non-`ok` statuses.
    pub error: Option<String>,
    /// Backpressure hint: retry no sooner than this many milliseconds.
    pub retry_after_ms: Option<u64>,
    /// The answer, on `ok`.
    pub result: Option<QueryResult>,
    /// Provenance block (present on `ok`; `null` on rejections, which are
    /// not answers).
    pub provenance: Option<Provenance>,
    /// Server-minted trace id for this request, 16 lowercase hex digits
    /// ([`mica_obs::TraceContext::trace_hex`]). Present on every outcome —
    /// including refusals — so client logs correlate with server traces.
    pub trace: Option<String>,
    /// Control-plane payload for `ops` answers: the `metrics` text
    /// exposition, or a one-line JSON document for `health`/`ready`/
    /// `stats`. `null` on submission answers.
    pub ops: Option<String>,
}

impl Response {
    /// A non-`ok` reply with no result.
    pub fn refusal(id: &str, status_code: &str, error: impl Into<String>) -> Response {
        Response {
            id: id.to_string(),
            status: status_code.to_string(),
            error: Some(error.into()),
            retry_after_ms: None,
            result: None,
            provenance: None,
            trace: None,
            ops: None,
        }
    }
}

/// Parse one request line.
///
/// # Errors
///
/// A rendered parse error; the caller turns it into an `error` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    serde_json::from_str::<Request>(line).map_err(|e| e.to_string())
}

/// Best-effort extraction of the `id` from an unparseable request line, so
/// the error response still correlates.
pub fn salvage_id(line: &str) -> String {
    serde_json::from_str::<Value>(line)
        .ok()
        .as_ref()
        .and_then(|v| v.field("id").cloned())
        .and_then(|v| match v {
            Value::String(s) => Some(s),
            Value::Number(n) => n.as_u64().map(|u| u.to_string()),
            _ => None,
        })
        .unwrap_or_else(|| "?".to_string())
}

/// Render a response as its wire line (no trailing newline).
pub fn render_response(resp: &Response) -> String {
    serde_json::to_string(resp).expect("Response serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenient_request_parsing() {
        let r = parse_request(r#"{"id":"a","kind":"table","name":"x/y/z","k":3,"junk":true}"#)
            .unwrap();
        assert_eq!(r.id, "a");
        assert_eq!(r.kind, RequestKind::Table);
        assert_eq!(r.name.as_deref(), Some("x/y/z"));
        assert_eq!(r.k, Some(3));
        assert_eq!(r.seed, None);

        assert!(parse_request(r#"{"kind":"table"}"#).unwrap_err().contains("id"));
        assert!(parse_request(r#"{"id":"a","kind":"nope"}"#).unwrap_err().contains("nope"));
        assert!(parse_request("[1,2]").unwrap_err().contains("object"));
        assert!(parse_request("not json").is_err());

        let ops = parse_request(r#"{"id":"m","kind":"ops","op":"metrics"}"#).unwrap();
        assert_eq!(ops.kind, RequestKind::Ops);
        assert_eq!(ops.op.as_deref(), Some("metrics"));
    }

    #[test]
    fn request_serialization_round_trips() {
        let mut r = Request::new("q7", RequestKind::Zoo);
        r.name = Some("a/b/c".into());
        r.seed = Some(42);
        r.scale = Some(0.5);
        r.deadline_ms = Some(100);
        let line = serde_json::to_string(&r).unwrap();
        let back = parse_request(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn response_round_trips_with_all_fields() {
        let resp = Response {
            id: "q1".into(),
            status: status::OK.into(),
            error: None,
            retry_after_ms: None,
            result: Some(QueryResult {
                name: "n".into(),
                vector: vec![1.0, 2.5],
                projection: vec![0.5],
                neighbors: vec![NeighborEntry { name: "m".into(), distance: 0.25 }],
                metric: "euclidean".into(),
                executed_instructions: 10_000,
                cached: false,
            }),
            provenance: Some(Provenance {
                server: "mica-serve 0.1.0".into(),
                table_fingerprint: 7,
                profile_fingerprint: 9,
                scale: 1.0,
                backend: "ref".into(),
                threads: 4,
                selected_metrics: vec![1, 5],
                ga_rho: 0.9,
                env: vec![EnvEntry { name: "MICA_SCALE".into(), value: "1.0".into() }],
            }),
            trace: Some("00000000deadbeef".into()),
            ops: None,
        };
        let line = render_response(&resp);
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn refusals_and_id_salvage() {
        let mut r = Response::refusal("x", status::OVERLOADED, "queue full");
        r.trace = Some("0000000000000001".into());
        assert_eq!(r.status, "overloaded");
        let line = render_response(&r);
        assert!(line.contains(r#""trace":"0000000000000001""#), "trace echoed: {line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);

        assert_eq!(salvage_id(r#"{"id":"q9","kind":"bogus"}"#), "q9");
        assert_eq!(salvage_id("garbage"), "?");
    }
}

//! The daemon: accept loop, admission control, dispatch, watchdog, drain.
//!
//! Thread layout (all std):
//!
//! - the **accept loop** (the thread running [`serve`] or the one
//!   [`spawn`] starts) polls a non-blocking listener and hands each
//!   connection to a reader thread; on SIGTERM/SIGINT (or
//!   [`ServerHandle::shutdown`]) it stops accepting and runs the drain;
//! - **reader threads** (one per connection) parse request lines and run
//!   *admission*: `draining` and `overloaded` rejections are written
//!   right here without ever touching the queue, everything admitted is
//!   pushed onto the bounded queue with its deadline registered at the
//!   watchdog — a request's deadline clock starts at admission, queueing
//!   time counts against it;
//! - the **dispatcher** pops batches off the queue and runs them through
//!   [`mica_par::par_map_isolated`], so one panicking submission becomes
//!   one structured `panic` response while its batch-mates complete;
//! - the **watchdog** ticks every few milliseconds and flips the cancel
//!   flag of any registered request past its deadline — the sliced VM
//!   loop observes the flag between fuel slices and stops.
//!
//! Drain: stop admission (readers answer `draining`), let the dispatcher
//! finish the queue and in-flight batches, flush the submission index
//! shards and the [`DrainSummary`] (both via
//! [`mica_fault::atomic_write_retry`]), write the run summary, flush the
//! observability sinks, and return — the binary then exits 0.

use crate::engine::Engine;
use crate::protocol::{
    parse_request, render_response, salvage_id, status, EnvEntry, Provenance, Request, Response,
};
use crate::ServeConfig;
use mica_experiments::runner::Runner;
use mica_obs as obs;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

static ACCEPTED: obs::Counter = obs::Counter::new("serve.accepted");
static OK: obs::Counter = obs::Counter::new("serve.ok");
static ERRORS: obs::Counter = obs::Counter::new("serve.error");
static PANICS: obs::Counter = obs::Counter::new("serve.panic");
static DEADLINES: obs::Counter = obs::Counter::new("serve.deadline");
static REJECTED_OVERLOADED: obs::Counter = obs::Counter::new("serve.rejected.overloaded");
static REJECTED_DRAINING: obs::Counter = obs::Counter::new("serve.rejected.draining");
static SHED: obs::Counter = obs::Counter::new("serve.shed");
static BAD_LINES: obs::Counter = obs::Counter::new("serve.bad_lines");
/// Admission-to-dispatch wait.
static QUEUE_US: obs::Histogram = obs::Histogram::new("serve.queue_us");
/// Admission-to-response-written latency.
static LATENCY_US: obs::Histogram = obs::Histogram::new("serve.latency_us");

fn register_counters() {
    for c in [
        &ACCEPTED,
        &OK,
        &ERRORS,
        &PANICS,
        &DEADLINES,
        &REJECTED_OVERLOADED,
        &REJECTED_DRAINING,
        &SHED,
        &BAD_LINES,
    ] {
        c.register();
    }
}

/// What the drain writes to `serve-drain.json` — the server's closing
/// account of everything it did. Schema-stable: every field always
/// present, derived serde both ways so consumers can round-trip it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainSummary {
    /// Requests that passed admission.
    pub accepted: u64,
    /// Answered `ok`.
    pub ok: u64,
    /// Answered `error` (bad request or failed execution).
    pub errors: u64,
    /// Quarantined panicking submissions (`panic`).
    pub panics: u64,
    /// Cancelled past their deadline (`deadline`).
    pub deadline_exceeded: u64,
    /// Rejected `overloaded` at the queue-full limit.
    pub rejected_overloaded: u64,
    /// Expensive submissions shed above the watermark (counted inside
    /// `rejected_overloaded` on the wire, separated here).
    pub shed: u64,
    /// Rejected `draining` during shutdown.
    pub rejected_draining: u64,
    /// Request lines that did not parse.
    pub bad_lines: u64,
    /// Requests still queued or executing when drain began, all of which
    /// were finished (never dropped) before this summary was written.
    pub drained_in_flight: u64,
    /// Submission-index shards written.
    pub index_shards: u64,
    /// Entries across those shards.
    pub index_entries: u64,
    /// Server uptime in seconds.
    pub wall_s: f64,
    /// The same provenance block every `ok` answer carried.
    pub provenance: Provenance,
}

/// One admitted request waiting for (or in) execution.
struct Job {
    req: Request,
    admitted: Instant,
    deadline_at: Instant,
    cancel: Arc<AtomicBool>,
    conn: Arc<Mutex<TcpStream>>,
}

/// Deadline registry the watchdog sweeps.
struct Watchdog {
    entries: Mutex<Vec<(Instant, Arc<AtomicBool>)>>,
}

impl Watchdog {
    fn register(&self, deadline_at: Instant, cancel: Arc<AtomicBool>) {
        self.entries.lock().expect("watchdog poisoned").push((deadline_at, cancel));
    }

    /// Fire expired deadlines; forget fired and orphaned entries.
    fn sweep(&self, now: Instant) {
        self.entries.lock().expect("watchdog poisoned").retain(|(deadline_at, cancel)| {
            if *deadline_at <= now {
                cancel.store(true, Ordering::Relaxed);
                return false;
            }
            // Strong count 1 means the job finished and dropped its clone;
            // nothing left to cancel.
            Arc::strong_count(cancel) > 1
        });
    }
}

struct Stats {
    accepted: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    deadline_exceeded: AtomicU64,
    rejected_overloaded: AtomicU64,
    shed: AtomicU64,
    rejected_draining: AtomicU64,
    bad_lines: AtomicU64,
    drained_in_flight: AtomicU64,
}

impl Stats {
    fn new() -> Stats {
        Stats {
            accepted: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            bad_lines: AtomicU64::new(0),
            drained_in_flight: AtomicU64::new(0),
        }
    }
}

fn bump(cell: &AtomicU64, counter: &obs::Counter) {
    cell.fetch_add(1, Ordering::Relaxed);
    counter.incr();
}

struct Shared {
    cfg: ServeConfig,
    engine: Engine,
    provenance: Provenance,
    queue: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
    draining: AtomicBool,
    done: AtomicBool,
    inflight: AtomicUsize,
    watchdog: Watchdog,
    stats: Stats,
}

/// Process-wide signal flag; [`install_signal_handlers`] points SIGTERM
/// and SIGINT here and the accept loop polls it.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // Only an atomic store: async-signal-safe.
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Route SIGTERM and SIGINT into a graceful drain. std links libc on the
/// platforms this repo targets, so `signal(2)` is declared directly
/// instead of growing a dependency.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

/// Write one response line to a connection, honoring `respond` fault
/// directives (`slow:respond` delays, `io:respond` / `torn:respond` drop
/// the write so the client's retry path gets exercised).
fn write_response(conn: &Mutex<TcpStream>, resp: &Response) {
    if let Some(ms) = mica_fault::plan::slow_fault("respond") {
        obs::warn!("injected latency: response {} delayed {ms}ms (MICA_FAULTS)", resp.id);
        thread::sleep(Duration::from_millis(ms));
    }
    if let Some(kind) = mica_fault::plan::io_fault("respond") {
        match kind {
            mica_fault::plan::IoFaultKind::Error => {
                mica_fault::metrics::incr(&mica_fault::metrics::INJECTED_IO)
            }
            mica_fault::plan::IoFaultKind::Torn => {
                mica_fault::metrics::incr(&mica_fault::metrics::INJECTED_TORN)
            }
        }
        obs::warn!("injected I/O fault: dropping response {} (MICA_FAULTS)", resp.id);
        // Simulate the connection dying mid-response: the client sees EOF
        // and its retry path takes over.
        let stream = conn.lock().expect("connection poisoned");
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return;
    }
    let mut line = render_response(resp);
    line.push('\n');
    let mut stream = conn.lock().expect("connection poisoned");
    if let Err(e) = stream.write_all(line.as_bytes()) {
        // The client hung up; its loss, not ours.
        obs::debug!("client write failed for {}: {e}", resp.id);
    }
}

/// Admission: either queue the request or return the rejection to write.
fn admit(shared: &Arc<Shared>, req: Request, conn: &Arc<Mutex<TcpStream>>) -> Option<Response> {
    let id = req.id.clone();
    if shared.draining.load(Ordering::SeqCst) {
        bump(&shared.stats.rejected_draining, &REJECTED_DRAINING);
        let mut resp = Response::refusal(&id, status::DRAINING, "server is draining");
        resp.retry_after_ms = Some(shared.cfg.retry_ms * 4);
        return Some(resp);
    }

    let deadline_ms = req
        .deadline_ms
        .unwrap_or(shared.cfg.default_deadline_ms)
        .clamp(1, shared.cfg.max_deadline_ms);
    let admitted = Instant::now();
    let deadline_at = admitted + Duration::from_millis(deadline_ms);

    let mut queue = shared.queue.lock().expect("queue poisoned");
    let depth = queue.len() + shared.inflight.load(Ordering::Relaxed);
    if depth >= shared.cfg.queue_cap {
        bump(&shared.stats.rejected_overloaded, &REJECTED_OVERLOADED);
        let mut resp = Response::refusal(&id, status::OVERLOADED, "admission queue is full");
        resp.retry_after_ms = Some(shared.cfg.retry_ms * (1 + depth as u64));
        return Some(resp);
    }
    if depth >= shared.cfg.watermark && !shared.engine.is_cheap(&req) {
        bump(&shared.stats.shed, &SHED);
        bump(&shared.stats.rejected_overloaded, &REJECTED_OVERLOADED);
        let mut resp = Response::refusal(
            &id,
            status::OVERLOADED,
            "load shedding: queue past watermark, submission needs simulation",
        );
        resp.retry_after_ms = Some(shared.cfg.retry_ms * (1 + depth as u64));
        return Some(resp);
    }

    let cancel = Arc::new(AtomicBool::new(false));
    shared.watchdog.register(deadline_at, Arc::clone(&cancel));
    queue.push_back(Job { req, admitted, deadline_at, cancel, conn: Arc::clone(conn) });
    drop(queue);
    bump(&shared.stats.accepted, &ACCEPTED);
    shared.work_cv.notify_one();
    None
}

/// One connection: read request lines until EOF, admit or reject each.
fn serve_connection(shared: Arc<Shared>, stream: TcpStream) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let conn = Arc::new(Mutex::new(stream));
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(req) => {
                if let Some(rejection) = admit(&shared, req, &conn) {
                    write_response(&conn, &rejection);
                }
            }
            Err(e) => {
                bump(&shared.stats.bad_lines, &BAD_LINES);
                write_response(&conn, &Response::refusal(&salvage_id(&line), status::ERROR, e));
            }
        }
    }
}

/// The dispatcher: pop batches, execute under panic isolation, respond.
fn dispatch_loop(shared: &Arc<Shared>) {
    let batch_cap = mica_par::num_threads().max(1);
    loop {
        let batch: Vec<Job> = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            while queue.is_empty() {
                if shared.done.load(Ordering::SeqCst)
                    || (shared.draining.load(Ordering::SeqCst)
                        && shared.inflight.load(Ordering::Relaxed) == 0)
                {
                    return;
                }
                let (q, _) = shared
                    .work_cv
                    .wait_timeout(queue, Duration::from_millis(20))
                    .expect("queue poisoned");
                queue = q;
            }
            let n = queue.len().min(batch_cap);
            shared.inflight.fetch_add(n, Ordering::SeqCst);
            queue.drain(..n).collect()
        };

        let outcomes = mica_par::par_map_isolated(&batch, |job| {
            QUEUE_US.record(job.admitted.elapsed().as_micros() as u64);
            shared.engine.execute(&job.req, job.deadline_at, &job.cancel, &shared.cfg)
        });

        for (job, outcome) in batch.iter().zip(outcomes) {
            let resp = match outcome {
                Ok(out) => {
                    match out.status {
                        status::OK => bump(&shared.stats.ok, &OK),
                        status::DEADLINE => bump(&shared.stats.deadline_exceeded, &DEADLINES),
                        _ => bump(&shared.stats.errors, &ERRORS),
                    }
                    Response {
                        id: job.req.id.clone(),
                        status: out.status.to_string(),
                        error: out.error,
                        retry_after_ms: None,
                        result: out.result,
                        provenance: if out.status == status::OK {
                            Some(shared.provenance.clone())
                        } else {
                            None
                        },
                    }
                }
                Err(panic) => {
                    bump(&shared.stats.panics, &PANICS);
                    Response::refusal(
                        &job.req.id,
                        status::PANIC,
                        format!("submission quarantined: {}", panic.payload),
                    )
                }
            };
            write_response(&job.conn, &resp);
            LATENCY_US.record(job.admitted.elapsed().as_micros() as u64);
        }
        shared.inflight.fetch_sub(batch.len(), Ordering::SeqCst);
        shared.work_cv.notify_all();
    }
}

fn build_provenance(engine: &Engine) -> Provenance {
    let mut env: Vec<EnvEntry> = std::env::vars()
        .filter(|(k, _)| k.starts_with("MICA_"))
        .map(|(name, value)| EnvEntry { name, value })
        .collect();
    env.sort_by(|a, b| a.name.cmp(&b.name));
    Provenance {
        server: format!("{} {}", env!("CARGO_PKG_NAME"), env!("CARGO_PKG_VERSION")),
        table_fingerprint: mica_workloads::table_fingerprint(),
        profile_fingerprint: engine.profiles().fingerprint,
        scale: engine.profiles().scale,
        backend: mica_core::Backend::from_env().name().to_string(),
        threads: mica_par::num_threads() as u64,
        selected_metrics: engine.space().selected().iter().map(|&i| i as u64).collect(),
        ga_rho: engine.space().rho(),
        env,
    }
}

/// A running in-process server (tests; the binary uses [`serve`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: thread::JoinHandle<std::io::Result<DrainSummary>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain, as SIGTERM would.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
    }

    /// Wait for the drain to finish and return its summary.
    ///
    /// # Errors
    ///
    /// Propagates listener errors from the accept loop.
    pub fn join(self) -> std::io::Result<DrainSummary> {
        self.thread.join().expect("server thread panicked")
    }
}

/// Start a server on `cfg.addr` in a background thread and return once
/// the listener is bound and the engine is warm.
///
/// # Errors
///
/// Binding or engine boot failures.
pub fn spawn(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let shared = boot_shared(cfg)?;
    let run_shared = Arc::clone(&shared);
    let thread = thread::Builder::new()
        .name("mica-serve-accept".into())
        .spawn(move || run(run_shared, listener))
        .expect("spawn accept thread");
    Ok(ServerHandle { addr, shared, thread })
}

/// Run the server on the calling thread until a signal (or
/// [`ServerHandle::shutdown`] from elsewhere) drains it. This is the
/// binary's whole life.
///
/// # Errors
///
/// Binding or engine boot failures.
pub fn serve(cfg: ServeConfig) -> std::io::Result<DrainSummary> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let shared = boot_shared(cfg)?;
    run(shared, listener)
}

fn boot_shared(cfg: ServeConfig) -> std::io::Result<Arc<Shared>> {
    register_counters();
    let engine = Engine::boot()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e.to_string()))?;
    let provenance = build_provenance(&engine);
    Ok(Arc::new(Shared {
        cfg,
        engine,
        provenance,
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        draining: AtomicBool::new(false),
        done: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
        watchdog: Watchdog { entries: Mutex::new(Vec::new()) },
        stats: Stats::new(),
    }))
}

fn run(shared: Arc<Shared>, listener: TcpListener) -> std::io::Result<DrainSummary> {
    let started = Instant::now();
    let mut runner = Runner::new("serve");
    listener.set_nonblocking(true)?;
    obs::info!(
        "mica-serve listening on {} (queue {}, watermark {})",
        listener.local_addr()?,
        shared.cfg.queue_cap,
        shared.cfg.watermark
    );

    let dispatcher = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("mica-serve-dispatch".into())
            .spawn(move || dispatch_loop(&shared))
            .expect("spawn dispatcher")
    };
    let watchdog = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("mica-serve-watchdog".into())
            .spawn(move || {
                while !shared.done.load(Ordering::SeqCst) {
                    shared.watchdog.sweep(Instant::now());
                    thread::sleep(Duration::from_millis(5));
                }
            })
            .expect("spawn watchdog")
    };

    runner.stage("accept", || {
        while !shared.draining.load(Ordering::SeqCst) {
            if SIGNALLED.load(Ordering::SeqCst) {
                shared.draining.store(true, Ordering::SeqCst);
                break;
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    obs::debug!("connection from {peer}");
                    let shared = Arc::clone(&shared);
                    // Reader threads are detached: they exit at client EOF,
                    // and the drain waits on *requests*, not connections.
                    let _ = thread::Builder::new()
                        .name("mica-serve-conn".into())
                        .spawn(move || serve_connection(shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    obs::warn!("accept failed: {e}");
                    thread::sleep(Duration::from_millis(20));
                }
            }
        }
    });

    // Drain: admission is closed (readers now answer `draining`); wait for
    // the queue and in-flight batches, then stop the worker threads.
    runner.stage("drain", || {
        let backlog = shared.queue.lock().expect("queue poisoned").len();
        obs::info!("draining: {backlog} queued, finishing in-flight work");
        shared
            .stats
            .drained_in_flight
            .fetch_add(backlog as u64 + shared.inflight.load(Ordering::SeqCst) as u64, Ordering::Relaxed);
        loop {
            let empty = shared.queue.lock().expect("queue poisoned").is_empty();
            if empty && shared.inflight.load(Ordering::SeqCst) == 0 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        shared.done.store(true, Ordering::SeqCst);
        shared.work_cv.notify_all();
    });
    dispatcher.join().expect("dispatcher panicked");
    watchdog.join().expect("watchdog panicked");

    let (index_shards, index_entries) = runner.stage("flush-index", || shared.engine.flush_index());

    let stats = &shared.stats;
    let summary = DrainSummary {
        accepted: stats.accepted.load(Ordering::Relaxed),
        ok: stats.ok.load(Ordering::Relaxed),
        errors: stats.errors.load(Ordering::Relaxed),
        panics: stats.panics.load(Ordering::Relaxed),
        deadline_exceeded: stats.deadline_exceeded.load(Ordering::Relaxed),
        rejected_overloaded: stats.rejected_overloaded.load(Ordering::Relaxed),
        shed: stats.shed.load(Ordering::Relaxed),
        rejected_draining: stats.rejected_draining.load(Ordering::Relaxed),
        bad_lines: stats.bad_lines.load(Ordering::Relaxed),
        drained_in_flight: stats.drained_in_flight.load(Ordering::Relaxed),
        index_shards,
        index_entries,
        wall_s: started.elapsed().as_secs_f64(),
        provenance: shared.provenance.clone(),
    };
    runner.stage("drain-summary", || {
        let path = mica_experiments::results_dir().join("serve-drain.json");
        let json = serde_json::to_string_pretty(&summary).expect("DrainSummary serializes");
        if let Err(e) = mica_fault::atomic_write_retry("serve-drain", &path, json.as_bytes()) {
            obs::warn!("cannot write drain summary {}: {e}", path.display());
        } else {
            obs::info!("drain summary written to {}", path.display());
        }
    });
    runner.finish();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_fires_expired_and_forgets_orphans() {
        let wd = Watchdog { entries: Mutex::new(Vec::new()) };
        let now = Instant::now();
        let expired = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicBool::new(false));
        wd.register(now - Duration::from_millis(1), Arc::clone(&expired));
        wd.register(now + Duration::from_secs(60), Arc::clone(&live));
        // An orphan: the job finished and dropped its clone already.
        wd.register(now + Duration::from_secs(60), Arc::new(AtomicBool::new(false)));
        wd.sweep(Instant::now());
        assert!(expired.load(Ordering::Relaxed));
        assert!(!live.load(Ordering::Relaxed));
        assert_eq!(wd.entries.lock().unwrap().len(), 1);
    }

    #[test]
    fn drain_summary_round_trips() {
        let summary = DrainSummary {
            accepted: 5,
            ok: 3,
            errors: 1,
            panics: 1,
            deadline_exceeded: 0,
            rejected_overloaded: 2,
            shed: 1,
            rejected_draining: 1,
            bad_lines: 0,
            drained_in_flight: 2,
            index_shards: 4,
            index_entries: 7,
            wall_s: 1.25,
            provenance: Provenance {
                server: "mica-serve test".into(),
                table_fingerprint: 1,
                profile_fingerprint: 2,
                scale: 1.0,
                backend: "batch".into(),
                threads: 4,
                selected_metrics: vec![0, 3],
                ga_rho: 0.8,
                env: vec![],
            },
        };
        let json = serde_json::to_string(&summary).unwrap();
        let back: DrainSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
    }
}

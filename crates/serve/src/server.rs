//! The daemon: accept loop, admission control, dispatch, watchdog, drain.
//!
//! Thread layout (all std):
//!
//! - the **accept loop** (the thread running [`serve`] or the one
//!   [`spawn`] starts) polls a non-blocking listener and hands each
//!   connection to a reader thread; on SIGTERM/SIGINT (or
//!   [`ServerHandle::shutdown`]) it keeps accepting — so fresh
//!   connections can still scrape the `ops` plane mid-drain — until the
//!   queue and in-flight work are gone, then runs the drain;
//! - **reader threads** (one per connection) parse request lines, mint
//!   each request's [`mica_obs::TraceContext`] (echoed as `trace` on
//!   every response) and run *admission*: `ops` control-plane queries are
//!   answered right here (bypassing the queue, even mid-drain),
//!   `draining` and `overloaded` rejections are written right here
//!   without ever touching the queue, everything admitted is pushed onto
//!   the bounded queue with its deadline registered at the watchdog — a
//!   request's deadline clock starts at admission, queueing time counts
//!   against it;
//! - the **dispatcher** pops batches off the queue and runs them through
//!   [`mica_par::par_map_isolated`], so one panicking submission becomes
//!   one structured `panic` response while its batch-mates complete;
//! - the **watchdog** ticks every few milliseconds and flips the cancel
//!   flag of any registered request past its deadline — the sliced VM
//!   loop observes the flag between fuel slices and stops.
//!
//! Every answered request becomes (a) one connected trace — a synthetic
//! root `request` span (admission → response written) with a `queue` span
//! and the engine's execution spans parented under it, all sharing the
//! request's trace id — and (b) one line of the JSONL access log flushed
//! to `<results>/serve-access.jsonl` on drain. The `MICA_SERVE_SLO_MS` /
//! `MICA_SERVE_SLO_TARGET` objective is scored per answer (windowed
//! counters feed `ops` scrapes; lifetime totals feed the
//! [`DrainSummary`]).
//!
//! Drain: stop admission (readers answer `draining`; `ops` stays live so
//! `ready` can report the drain), let the dispatcher finish the queue and
//! in-flight batches, flush the submission index shards, the access log,
//! and the [`DrainSummary`] (all via [`mica_fault::atomic_write_retry`]),
//! write the run summary, flush the observability sinks, and return — the
//! binary then exits 0.

use crate::engine::Engine;
use crate::protocol::{
    parse_request, render_response, salvage_id, status, EnvEntry, Provenance, Request,
    RequestKind, Response,
};
use crate::ServeConfig;
use mica_experiments::runner::Runner;
use mica_obs as obs;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

static ACCEPTED: obs::Counter = obs::Counter::new("serve.accepted");
static OK: obs::Counter = obs::Counter::new("serve.ok");
static ERRORS: obs::Counter = obs::Counter::new("serve.error");
static PANICS: obs::Counter = obs::Counter::new("serve.panic");
static DEADLINES: obs::Counter = obs::Counter::new("serve.deadline");
static REJECTED_OVERLOADED: obs::Counter = obs::Counter::new("serve.rejected.overloaded");
static REJECTED_DRAINING: obs::Counter = obs::Counter::new("serve.rejected.draining");
static SHED: obs::Counter = obs::Counter::new("serve.shed");
static BAD_LINES: obs::Counter = obs::Counter::new("serve.bad_lines");
/// Control-plane (`ops`) queries answered.
static OPS: obs::Counter = obs::Counter::new("serve.ops");
/// Answered requests that met the SLO (`ok` within `MICA_SERVE_SLO_MS`).
static SLO_GOOD: obs::Counter = obs::Counter::new("serve.slo.good");
/// Answered requests measured against the SLO (every non-refused answer).
static SLO_TOTAL: obs::Counter = obs::Counter::new("serve.slo.total");
/// Admission-to-dispatch wait.
static QUEUE_US: obs::Histogram = obs::Histogram::new("serve.queue_us");
/// Admission-to-response-written latency.
static LATENCY_US: obs::Histogram = obs::Histogram::new("serve.latency_us");

/// Stable Chrome-trace tracks for the daemon's long-lived threads
/// ([`obs::set_service_thread`] slots).
const TRACK_DISPATCH: u64 = 0;
const TRACK_WATCHDOG: u64 = 1;
const TRACK_ACCEPT: u64 = 2;

fn register_counters() {
    for c in [
        &ACCEPTED,
        &OK,
        &ERRORS,
        &PANICS,
        &DEADLINES,
        &REJECTED_OVERLOADED,
        &REJECTED_DRAINING,
        &SHED,
        &BAD_LINES,
        &OPS,
        &SLO_GOOD,
        &SLO_TOTAL,
    ] {
        c.register();
    }
}

/// `good / total`, with an empty window scoring a perfect 1.0 (no
/// requests means no missed objective).
fn slo_attainment(good: u64, total: u64) -> f64 {
    if total == 0 {
        1.0
    } else {
        good as f64 / total as f64
    }
}

/// Error-budget burn rate: the fraction of the budget being spent,
/// normalized so 1.0 = exactly sustainable. `target` is clamped away
/// from 1.0 so a (misconfigured) zero-width budget cannot divide by zero.
fn slo_burn_rate(attainment: f64, target: f64) -> f64 {
    (1.0 - attainment) / (1.0 - target).max(1e-9)
}

/// What the drain writes to `serve-drain.json` — the server's closing
/// account of everything it did. Schema-stable: every field always
/// present, derived serde both ways so consumers can round-trip it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainSummary {
    /// Requests that passed admission.
    pub accepted: u64,
    /// Answered `ok`.
    pub ok: u64,
    /// Answered `error` (bad request or failed execution).
    pub errors: u64,
    /// Quarantined panicking submissions (`panic`).
    pub panics: u64,
    /// Cancelled past their deadline (`deadline`).
    pub deadline_exceeded: u64,
    /// Rejected `overloaded` at the queue-full limit.
    pub rejected_overloaded: u64,
    /// Expensive submissions shed above the watermark (counted inside
    /// `rejected_overloaded` on the wire, separated here).
    pub shed: u64,
    /// Rejected `draining` during shutdown.
    pub rejected_draining: u64,
    /// Request lines that did not parse.
    pub bad_lines: u64,
    /// Requests still queued or executing when drain began, all of which
    /// were finished (never dropped) before this summary was written.
    pub drained_in_flight: u64,
    /// Submission-index shards written.
    pub index_shards: u64,
    /// Entries across those shards.
    pub index_entries: u64,
    /// Access-log lines flushed to `serve-access.jsonl`.
    pub access_log_lines: u64,
    /// The latency objective the run was held to (`MICA_SERVE_SLO_MS`).
    pub slo_ms: u64,
    /// The attainment objective (`MICA_SERVE_SLO_TARGET`).
    pub slo_target: f64,
    /// Answered requests that met the objective (`ok` within `slo_ms`).
    pub slo_good: u64,
    /// Data-plane answers measured against the objective. Refusals and
    /// bad lines are admission outcomes, not answers; `ops` scrapes are
    /// the measurement plane — all three are excluded.
    pub slo_total: u64,
    /// `slo_good / slo_total` over the whole run (1.0 when nothing was
    /// answered).
    pub slo_attainment: f64,
    /// `(1 − attainment) / (1 − target)`; above 1.0 the error budget is
    /// being spent faster than the objective sustains.
    pub slo_burn_rate: f64,
    /// Server uptime in seconds.
    pub wall_s: f64,
    /// The same provenance block every `ok` answer carried.
    pub provenance: Provenance,
}

/// One line of the JSONL access log (`<results>/serve-access.jsonl`).
/// Schema-stable: every field always present, derived serde both ways so
/// `mica-prof slo` and CI validation can round-trip it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessEntry {
    /// When the response was written, microseconds on the
    /// [`obs::timestamp_us`] timeline (the same clock the trace spans
    /// use).
    pub ts_us: u64,
    /// The request's correlation id.
    pub id: String,
    /// The request's trace id, 16 lowercase hex digits — the same value
    /// the response echoed and the trace spans carry.
    pub trace: String,
    /// Request kind (`table`/`zoo`/`asm`/`ops`), or `invalid` for lines
    /// that did not parse.
    pub kind: String,
    /// Response status written to the client.
    pub outcome: String,
    /// Admission-to-dispatch wait (0 for anything never queued).
    pub queue_wait_us: u64,
    /// Engine execution time (0 for refusals and ops).
    pub exec_us: u64,
    /// Dynamic instructions the answer cost (0 for cache hits, refusals
    /// and ops).
    pub fuel: u64,
    /// Deadline headroom when the response was written, in milliseconds;
    /// negative means the deadline had already passed (0 for anything
    /// that never carried a deadline).
    pub deadline_slack_ms: i64,
}

/// One admitted request waiting for (or in) execution.
struct Job {
    req: Request,
    /// The trace minted for this request at its reader thread; workers
    /// install it so execution spans parent into the request's trace.
    ctx: obs::TraceContext,
    admitted: Instant,
    /// `admitted` on the span timeline, so the synthetic `request` and
    /// `queue` spans line up with the engine's real ones.
    admitted_us: u64,
    deadline_at: Instant,
    cancel: Arc<AtomicBool>,
    conn: Arc<Mutex<TcpStream>>,
}

/// Deadline registry the watchdog sweeps.
struct Watchdog {
    entries: Mutex<Vec<(Instant, Arc<AtomicBool>)>>,
}

impl Watchdog {
    fn register(&self, deadline_at: Instant, cancel: Arc<AtomicBool>) {
        self.entries.lock().expect("watchdog poisoned").push((deadline_at, cancel));
    }

    /// Fire expired deadlines; forget fired and orphaned entries.
    fn sweep(&self, now: Instant) {
        self.entries.lock().expect("watchdog poisoned").retain(|(deadline_at, cancel)| {
            if *deadline_at <= now {
                cancel.store(true, Ordering::Relaxed);
                return false;
            }
            // Strong count 1 means the job finished and dropped its clone;
            // nothing left to cancel.
            Arc::strong_count(cancel) > 1
        });
    }
}

struct Stats {
    accepted: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    deadline_exceeded: AtomicU64,
    rejected_overloaded: AtomicU64,
    shed: AtomicU64,
    rejected_draining: AtomicU64,
    bad_lines: AtomicU64,
    drained_in_flight: AtomicU64,
    slo_good: AtomicU64,
    slo_total: AtomicU64,
}

impl Stats {
    fn new() -> Stats {
        Stats {
            accepted: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            bad_lines: AtomicU64::new(0),
            drained_in_flight: AtomicU64::new(0),
            slo_good: AtomicU64::new(0),
            slo_total: AtomicU64::new(0),
        }
    }
}

fn bump(cell: &AtomicU64, counter: &obs::Counter) {
    cell.fetch_add(1, Ordering::Relaxed);
    counter.incr();
}

struct Shared {
    cfg: ServeConfig,
    engine: Engine,
    provenance: Provenance,
    /// Boot instant; `ops` uptime and the drain summary's `wall_s`.
    started: Instant,
    queue: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
    draining: AtomicBool,
    done: AtomicBool,
    inflight: AtomicUsize,
    watchdog: Watchdog,
    stats: Stats,
    /// Pre-rendered access-log lines, flushed to `serve-access.jsonl`
    /// (one atomic write) at drain.
    access: Mutex<Vec<String>>,
}

/// Append one line to the in-memory access log (flushed at drain).
fn log_access(shared: &Shared, entry: &AccessEntry) {
    let line = serde_json::to_string(entry).expect("AccessEntry serializes");
    shared.access.lock().expect("access log poisoned").push(line);
}

/// Signed deadline headroom in milliseconds (negative = already past).
fn deadline_slack_ms(deadline_at: Instant, now: Instant) -> i64 {
    if deadline_at >= now {
        (deadline_at - now).as_millis() as i64
    } else {
        -((now - deadline_at).as_millis() as i64)
    }
}

/// Process-wide signal flag; [`install_signal_handlers`] points SIGTERM
/// and SIGINT here and the accept loop polls it.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // Only an atomic store: async-signal-safe.
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// Route SIGTERM and SIGINT into a graceful drain. std links libc on the
/// platforms this repo targets, so `signal(2)` is declared directly
/// instead of growing a dependency.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

/// Write one response line to a connection, honoring `respond` fault
/// directives (`slow:respond` delays, `io:respond` / `torn:respond` drop
/// the write so the client's retry path gets exercised).
fn write_response(conn: &Mutex<TcpStream>, resp: &Response) {
    if let Some(ms) = mica_fault::plan::slow_fault("respond") {
        obs::warn!("injected latency: response {} delayed {ms}ms (MICA_FAULTS)", resp.id);
        thread::sleep(Duration::from_millis(ms));
    }
    if let Some(kind) = mica_fault::plan::io_fault("respond") {
        match kind {
            mica_fault::plan::IoFaultKind::Error => {
                mica_fault::metrics::incr(&mica_fault::metrics::INJECTED_IO)
            }
            mica_fault::plan::IoFaultKind::Torn => {
                mica_fault::metrics::incr(&mica_fault::metrics::INJECTED_TORN)
            }
        }
        obs::warn!("injected I/O fault: dropping response {} (MICA_FAULTS)", resp.id);
        // Simulate the connection dying mid-response: the client sees EOF
        // and its retry path takes over.
        let stream = conn.lock().expect("connection poisoned");
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return;
    }
    let mut line = render_response(resp);
    line.push('\n');
    let mut stream = conn.lock().expect("connection poisoned");
    if let Err(e) = stream.write_all(line.as_bytes()) {
        // The client hung up; its loss, not ours.
        obs::debug!("client write failed for {}: {e}", resp.id);
    }
}

/// Admission: either queue the request or return the rejection to write.
fn admit(
    shared: &Arc<Shared>,
    req: Request,
    ctx: obs::TraceContext,
    conn: &Arc<Mutex<TcpStream>>,
) -> Option<Response> {
    let id = req.id.clone();
    if shared.draining.load(Ordering::SeqCst) {
        bump(&shared.stats.rejected_draining, &REJECTED_DRAINING);
        let mut resp = Response::refusal(&id, status::DRAINING, "server is draining");
        resp.retry_after_ms = Some(shared.cfg.retry_ms * 4);
        return Some(resp);
    }

    let deadline_ms = req
        .deadline_ms
        .unwrap_or(shared.cfg.default_deadline_ms)
        .clamp(1, shared.cfg.max_deadline_ms);
    let admitted = Instant::now();
    let admitted_us = obs::timestamp_us();
    let deadline_at = admitted + Duration::from_millis(deadline_ms);

    let mut queue = shared.queue.lock().expect("queue poisoned");
    let depth = queue.len() + shared.inflight.load(Ordering::Relaxed);
    if depth >= shared.cfg.queue_cap {
        bump(&shared.stats.rejected_overloaded, &REJECTED_OVERLOADED);
        let mut resp = Response::refusal(&id, status::OVERLOADED, "admission queue is full");
        resp.retry_after_ms = Some(shared.cfg.retry_ms * (1 + depth as u64));
        return Some(resp);
    }
    if depth >= shared.cfg.watermark && !shared.engine.is_cheap(&req) {
        bump(&shared.stats.shed, &SHED);
        bump(&shared.stats.rejected_overloaded, &REJECTED_OVERLOADED);
        let mut resp = Response::refusal(
            &id,
            status::OVERLOADED,
            "load shedding: queue past watermark, submission needs simulation",
        );
        resp.retry_after_ms = Some(shared.cfg.retry_ms * (1 + depth as u64));
        return Some(resp);
    }

    let cancel = Arc::new(AtomicBool::new(false));
    shared.watchdog.register(deadline_at, Arc::clone(&cancel));
    queue.push_back(Job {
        req,
        ctx,
        admitted,
        admitted_us,
        deadline_at,
        cancel,
        conn: Arc::clone(conn),
    });
    drop(queue);
    bump(&shared.stats.accepted, &ACCEPTED);
    shared.work_cv.notify_one();
    None
}

/// One connection: read request lines until EOF; each line gets a fresh
/// [`obs::TraceContext`] (echoed as `trace` in the response), then either
/// an immediate `ops` answer, an admission rejection, or a queue slot.
fn serve_connection(shared: Arc<Shared>, stream: TcpStream) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(_) => return,
    };
    let conn = Arc::new(Mutex::new(stream));
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let ctx = obs::TraceContext::fresh();
        let trace_hex = ctx.trace_hex();
        match parse_request(&line) {
            // Control plane: answered right here, never queued, and still
            // answered mid-drain so `ready` can report the drain itself.
            Ok(req) if req.kind == RequestKind::Ops => {
                OPS.incr();
                let mut resp = handle_ops(&shared, &req);
                resp.trace = Some(trace_hex.clone());
                write_response(&conn, &resp);
                log_access(
                    &shared,
                    &AccessEntry {
                        ts_us: obs::timestamp_us(),
                        id: req.id,
                        trace: trace_hex,
                        kind: "ops".into(),
                        outcome: resp.status,
                        queue_wait_us: 0,
                        exec_us: 0,
                        fuel: 0,
                        deadline_slack_ms: 0,
                    },
                );
            }
            Ok(req) => {
                let kind = req.kind.name();
                let id = req.id.clone();
                if let Some(mut rejection) = admit(&shared, req, ctx, &conn) {
                    rejection.trace = Some(trace_hex.clone());
                    write_response(&conn, &rejection);
                    log_access(
                        &shared,
                        &AccessEntry {
                            ts_us: obs::timestamp_us(),
                            id,
                            trace: trace_hex,
                            kind: kind.into(),
                            outcome: rejection.status,
                            queue_wait_us: 0,
                            exec_us: 0,
                            fuel: 0,
                            deadline_slack_ms: 0,
                        },
                    );
                }
            }
            Err(e) => {
                bump(&shared.stats.bad_lines, &BAD_LINES);
                let mut resp = Response::refusal(&salvage_id(&line), status::ERROR, e);
                resp.trace = Some(trace_hex.clone());
                write_response(&conn, &resp);
                log_access(
                    &shared,
                    &AccessEntry {
                        ts_us: obs::timestamp_us(),
                        id: resp.id,
                        trace: trace_hex,
                        kind: "invalid".into(),
                        outcome: resp.status,
                        queue_wait_us: 0,
                        exec_us: 0,
                        fuel: 0,
                        deadline_slack_ms: 0,
                    },
                );
            }
        }
    }
}

/// Answer one control-plane (`ops`) query. Reads shared state and the
/// process-wide metric registry; never touches the queue.
fn handle_ops(shared: &Shared, req: &Request) -> Response {
    let op = req.op.as_deref().unwrap_or("health");
    let payload = match op {
        "health" => Some(format!("{{\"status\":\"ok\",\"uptime_s\":{:.3}}}", shared.started.elapsed().as_secs_f64())),
        // `ready` answers `ok` with a boolean payload (instead of a
        // `draining` refusal) so retrying clients never back off on it.
        "ready" => {
            Some(format!("{{\"ready\":{}}}", !shared.draining.load(Ordering::SeqCst)))
        }
        "stats" => Some(stats_text(shared)),
        "metrics" => Some(metrics_text(shared)),
        _ => None,
    };
    match payload {
        Some(text) => Response {
            id: req.id.clone(),
            status: status::OK.to_string(),
            error: None,
            retry_after_ms: None,
            result: None,
            provenance: None,
            trace: None,
            ops: Some(text),
        },
        None => Response::refusal(
            &req.id,
            status::ERROR,
            format!("unknown ops op {op:?} (want health, ready, metrics or stats)"),
        ),
    }
}

/// The `stats` ops payload: a compact JSON object of live load state and
/// last-window SLO standing.
fn stats_text(shared: &Shared) -> String {
    let queue_depth = shared.queue.lock().expect("queue poisoned").len();
    let inflight = shared.inflight.load(Ordering::Relaxed);
    let draining = shared.draining.load(Ordering::SeqCst);
    let good = SLO_GOOD.windowed();
    let total = SLO_TOTAL.windowed();
    let attainment = slo_attainment(good, total);
    let burn = slo_burn_rate(attainment, shared.cfg.slo_target);
    format!(
        "{{\"queue_depth\":{queue_depth},\"inflight\":{inflight},\"draining\":{draining},\
\"window_ms\":{},\"accepted_1m\":{},\"ok_1m\":{},\"shed_1m\":{},\
\"rejected_overloaded_1m\":{},\"rejected_draining_1m\":{},\
\"slo_ms\":{},\"slo_target\":{},\"slo_good_1m\":{good},\"slo_total_1m\":{total},\
\"slo_attainment_1m\":{attainment},\"slo_burn_rate_1m\":{burn}}}",
        obs::window_span_ms(),
        ACCEPTED.windowed(),
        OK.windowed(),
        SHED.windowed(),
        REJECTED_OVERLOADED.windowed(),
        REJECTED_DRAINING.windowed(),
        shared.cfg.slo_ms,
        shared.cfg.slo_target,
    )
}

/// The `metrics` ops payload: a plain-text exposition of every registered
/// counter (lifetime and last-window values) and histogram (count / mean /
/// p50 / p99 upper bounds), prefixed with the provenance fingerprints so a
/// scrape is attributable to the table and profile set that produced it.
fn metrics_text(shared: &Shared) -> String {
    let mut out = String::new();
    out.push_str("# mica-serve metrics\n");
    out.push_str(&format!(
        "# provenance table_fingerprint={} profile_fingerprint={}\n",
        shared.provenance.table_fingerprint, shared.provenance.profile_fingerprint
    ));
    out.push_str(&format!("# window_ms {}\n", obs::window_span_ms()));
    let windowed: std::collections::BTreeMap<String, u64> =
        obs::counters_windowed().into_iter().collect();
    for (name, total) in obs::counters() {
        let metric = name.replace('.', "_");
        out.push_str(&format!("{metric}_total {total}\n"));
        out.push_str(&format!("{metric}_1m {}\n", windowed.get(&name).copied().unwrap_or(0)));
    }
    for snap in obs::histograms() {
        let metric = snap.name.replace('.', "_");
        out.push_str(&format!("{metric}_count {}\n", snap.count));
        out.push_str(&format!("{metric}_mean {}\n", snap.mean()));
        out.push_str(&format!("{metric}_p50 {}\n", snap.quantile_upper_bound(0.5)));
        out.push_str(&format!("{metric}_p99 {}\n", snap.quantile_upper_bound(0.99)));
    }
    for snap in obs::histograms_windowed() {
        let metric = snap.name.replace('.', "_");
        out.push_str(&format!("{metric}_1m_count {}\n", snap.count));
        out.push_str(&format!("{metric}_1m_p50 {}\n", snap.quantile_upper_bound(0.5)));
        out.push_str(&format!("{metric}_1m_p99 {}\n", snap.quantile_upper_bound(0.99)));
    }
    let good = SLO_GOOD.windowed();
    let total = SLO_TOTAL.windowed();
    let attainment = slo_attainment(good, total);
    out.push_str(&format!("serve_slo_attainment_1m {attainment}\n"));
    out.push_str(&format!(
        "serve_slo_burn_rate_1m {}\n",
        slo_burn_rate(attainment, shared.cfg.slo_target)
    ));
    out
}

/// The dispatcher: pop batches, execute under panic isolation, respond.
fn dispatch_loop(shared: &Arc<Shared>) {
    let batch_cap = mica_par::num_threads().max(1);
    loop {
        let batch: Vec<Job> = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            while queue.is_empty() {
                if shared.done.load(Ordering::SeqCst)
                    || (shared.draining.load(Ordering::SeqCst)
                        && shared.inflight.load(Ordering::Relaxed) == 0)
                {
                    return;
                }
                let (q, _) = shared
                    .work_cv
                    .wait_timeout(queue, Duration::from_millis(20))
                    .expect("queue poisoned");
                queue = q;
            }
            let n = queue.len().min(batch_cap);
            shared.inflight.fetch_add(n, Ordering::SeqCst);
            queue.drain(..n).collect()
        };

        let outcomes = mica_par::par_map_isolated(&batch, |job| {
            // Install the request's context so the engine's spans (and any
            // nested pool spans) parent into the request's trace, then
            // backfill the queue wait as a span of that trace.
            let _ctx = obs::install_context(Some(job.ctx));
            let wait_us = job.admitted.elapsed().as_micros() as u64;
            QUEUE_US.record(wait_us);
            obs::emit_span_record(obs::SpanRecord {
                ts_us: job.admitted_us,
                dur_us: wait_us,
                tid: obs::current_tid(),
                depth: 0,
                trace_id: job.ctx.trace_id,
                span_id: obs::next_span_id(),
                parent_id: job.ctx.span_id,
                cat: "serve",
                name: "queue".into(),
                attrs: vec![("id", job.req.id.as_str().into())],
            });
            let exec_started = Instant::now();
            let outcome = shared.engine.execute(&job.req, job.deadline_at, &job.cancel, &shared.cfg);
            (outcome, wait_us, exec_started.elapsed().as_micros() as u64)
        });

        for (job, result) in batch.iter().zip(outcomes) {
            let (resp, queue_wait_us, exec_us) = match result {
                Ok((out, wait_us, exec_us)) => {
                    match out.status {
                        status::OK => bump(&shared.stats.ok, &OK),
                        status::DEADLINE => bump(&shared.stats.deadline_exceeded, &DEADLINES),
                        _ => bump(&shared.stats.errors, &ERRORS),
                    }
                    let resp = Response {
                        id: job.req.id.clone(),
                        status: out.status.to_string(),
                        error: out.error,
                        retry_after_ms: None,
                        result: out.result,
                        provenance: if out.status == status::OK {
                            Some(shared.provenance.clone())
                        } else {
                            None
                        },
                        trace: Some(job.ctx.trace_hex()),
                        ops: None,
                    };
                    (resp, wait_us, exec_us)
                }
                Err(panic) => {
                    bump(&shared.stats.panics, &PANICS);
                    let mut resp = Response::refusal(
                        &job.req.id,
                        status::PANIC,
                        format!("submission quarantined: {}", panic.payload),
                    );
                    resp.trace = Some(job.ctx.trace_hex());
                    (resp, 0, 0)
                }
            };
            write_response(&job.conn, &resp);
            let latency_us = job.admitted.elapsed().as_micros() as u64;
            LATENCY_US.record(latency_us);

            // SLO accounting: every data-plane answer counts; good means
            // `ok` within the latency objective, response write included.
            bump(&shared.stats.slo_total, &SLO_TOTAL);
            if resp.status == status::OK && latency_us <= shared.cfg.slo_ms.saturating_mul(1_000) {
                bump(&shared.stats.slo_good, &SLO_GOOD);
            }

            // The trace's root: one `request` span covering admission to
            // response written, with the `queue` and engine spans under it.
            obs::emit_span_record(obs::SpanRecord {
                ts_us: job.admitted_us,
                dur_us: latency_us,
                tid: obs::current_tid(),
                depth: 0,
                trace_id: job.ctx.trace_id,
                span_id: job.ctx.span_id,
                parent_id: 0,
                cat: "serve",
                name: "request".into(),
                attrs: vec![
                    ("id", job.req.id.as_str().into()),
                    ("kind", job.req.kind.name().into()),
                    ("outcome", resp.status.as_str().into()),
                    ("queue_wait_us", queue_wait_us.into()),
                    ("exec_us", exec_us.into()),
                ],
            });
            let fuel = resp.result.as_ref().map_or(0, |r| r.executed_instructions);
            log_access(
                shared,
                &AccessEntry {
                    ts_us: obs::timestamp_us(),
                    id: job.req.id.clone(),
                    trace: job.ctx.trace_hex(),
                    kind: job.req.kind.name().into(),
                    outcome: resp.status.clone(),
                    queue_wait_us,
                    exec_us,
                    fuel,
                    deadline_slack_ms: deadline_slack_ms(job.deadline_at, Instant::now()),
                },
            );
        }
        shared.inflight.fetch_sub(batch.len(), Ordering::SeqCst);
        shared.work_cv.notify_all();
    }
}

fn build_provenance(engine: &Engine) -> Provenance {
    let mut env: Vec<EnvEntry> = std::env::vars()
        .filter(|(k, _)| k.starts_with("MICA_"))
        .map(|(name, value)| EnvEntry { name, value })
        .collect();
    env.sort_by(|a, b| a.name.cmp(&b.name));
    Provenance {
        server: format!("{} {}", env!("CARGO_PKG_NAME"), env!("CARGO_PKG_VERSION")),
        table_fingerprint: mica_workloads::table_fingerprint(),
        profile_fingerprint: engine.profiles().fingerprint,
        scale: engine.profiles().scale,
        backend: mica_core::Backend::from_env().name().to_string(),
        threads: mica_par::num_threads() as u64,
        selected_metrics: engine.space().selected().iter().map(|&i| i as u64).collect(),
        ga_rho: engine.space().rho(),
        env,
    }
}

/// A running in-process server (tests; the binary uses [`serve`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: thread::JoinHandle<std::io::Result<DrainSummary>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begin a graceful drain, as SIGTERM would.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
    }

    /// Wait for the drain to finish and return its summary.
    ///
    /// # Errors
    ///
    /// Propagates listener errors from the accept loop.
    pub fn join(self) -> std::io::Result<DrainSummary> {
        self.thread.join().expect("server thread panicked")
    }
}

/// Start a server on `cfg.addr` in a background thread and return once
/// the listener is bound and the engine is warm.
///
/// # Errors
///
/// Binding or engine boot failures.
pub fn spawn(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let shared = boot_shared(cfg)?;
    let run_shared = Arc::clone(&shared);
    let thread = thread::Builder::new()
        .name("mica-serve-accept".into())
        .spawn(move || run(run_shared, listener))
        .expect("spawn accept thread");
    Ok(ServerHandle { addr, shared, thread })
}

/// Run the server on the calling thread until a signal (or
/// [`ServerHandle::shutdown`] from elsewhere) drains it. This is the
/// binary's whole life.
///
/// # Errors
///
/// Binding or engine boot failures.
pub fn serve(cfg: ServeConfig) -> std::io::Result<DrainSummary> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let shared = boot_shared(cfg)?;
    run(shared, listener)
}

fn boot_shared(cfg: ServeConfig) -> std::io::Result<Arc<Shared>> {
    register_counters();
    let engine = Engine::boot()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e.to_string()))?;
    let provenance = build_provenance(&engine);
    Ok(Arc::new(Shared {
        cfg,
        engine,
        provenance,
        started: Instant::now(),
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        draining: AtomicBool::new(false),
        done: AtomicBool::new(false),
        inflight: AtomicUsize::new(0),
        watchdog: Watchdog { entries: Mutex::new(Vec::new()) },
        stats: Stats::new(),
        access: Mutex::new(Vec::new()),
    }))
}

fn run(shared: Arc<Shared>, listener: TcpListener) -> std::io::Result<DrainSummary> {
    // A stable, named Chrome-trace track for the accept loop (the other
    // service threads claim theirs when they start).
    obs::set_service_thread(TRACK_ACCEPT, "mica-serve-accept");
    let mut runner = Runner::new("serve");
    listener.set_nonblocking(true)?;
    obs::info!(
        "mica-serve listening on {} (queue {}, watermark {})",
        listener.local_addr()?,
        shared.cfg.queue_cap,
        shared.cfg.watermark
    );

    let dispatcher = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("mica-serve-dispatch".into())
            .spawn(move || {
                obs::set_service_thread(TRACK_DISPATCH, "mica-serve-dispatch");
                dispatch_loop(&shared)
            })
            .expect("spawn dispatcher")
    };
    let watchdog = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("mica-serve-watchdog".into())
            .spawn(move || {
                obs::set_service_thread(TRACK_WATCHDOG, "mica-serve-watchdog");
                while !shared.done.load(Ordering::SeqCst) {
                    shared.watchdog.sweep(Instant::now());
                    thread::sleep(Duration::from_millis(5));
                }
            })
            .expect("spawn watchdog")
    };

    // The listener stays open *through* the drain: new data requests are
    // refused `draining` by the readers, but `ops` scrapes on fresh
    // connections (`ready` flipping false, final `metrics` pulls) keep
    // being answered until the last in-flight request finishes — exactly
    // when an operator most needs the measurement plane.
    let mut drain_announced = false;
    runner.stage("accept", || {
        loop {
            if SIGNALLED.load(Ordering::SeqCst) {
                shared.draining.store(true, Ordering::SeqCst);
            }
            if shared.draining.load(Ordering::SeqCst) {
                if !drain_announced {
                    drain_announced = true;
                    let backlog = shared.queue.lock().expect("queue poisoned").len();
                    obs::info!("draining: {backlog} queued, finishing in-flight work");
                    shared.stats.drained_in_flight.fetch_add(
                        backlog as u64 + shared.inflight.load(Ordering::SeqCst) as u64,
                        Ordering::Relaxed,
                    );
                }
                let empty = shared.queue.lock().expect("queue poisoned").is_empty();
                if empty && shared.inflight.load(Ordering::SeqCst) == 0 {
                    break;
                }
            }
            match listener.accept() {
                Ok((stream, peer)) => {
                    obs::debug!("connection from {peer}");
                    let shared = Arc::clone(&shared);
                    // Reader threads are detached: they exit at client EOF,
                    // and the drain waits on *requests*, not connections.
                    let _ = thread::Builder::new()
                        .name("mica-serve-conn".into())
                        .spawn(move || serve_connection(shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    obs::warn!("accept failed: {e}");
                    thread::sleep(Duration::from_millis(20));
                }
            }
        }
    });

    // Drain: admission closed and in-flight work already waited out by the
    // accept stage above; stop the worker threads.
    runner.stage("drain", || {
        loop {
            let empty = shared.queue.lock().expect("queue poisoned").is_empty();
            if empty && shared.inflight.load(Ordering::SeqCst) == 0 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        shared.done.store(true, Ordering::SeqCst);
        shared.work_cv.notify_all();
    });
    dispatcher.join().expect("dispatcher panicked");
    watchdog.join().expect("watchdog panicked");

    let (index_shards, index_entries) = runner.stage("flush-index", || shared.engine.flush_index());

    let access_log_lines = runner.stage("flush-access-log", || {
        let lines = shared.access.lock().expect("access log poisoned");
        if lines.is_empty() {
            return 0;
        }
        let mut body = lines.join("\n");
        body.push('\n');
        let path = mica_experiments::results_dir().join("serve-access.jsonl");
        if let Err(e) = mica_fault::atomic_write_retry("serve-access", &path, body.as_bytes()) {
            obs::warn!("cannot write access log {}: {e}", path.display());
            0
        } else {
            obs::info!("access log ({} lines) written to {}", lines.len(), path.display());
            lines.len() as u64
        }
    });

    let stats = &shared.stats;
    let slo_good = stats.slo_good.load(Ordering::Relaxed);
    let slo_total = stats.slo_total.load(Ordering::Relaxed);
    let slo_attain = slo_attainment(slo_good, slo_total);
    let summary = DrainSummary {
        accepted: stats.accepted.load(Ordering::Relaxed),
        ok: stats.ok.load(Ordering::Relaxed),
        errors: stats.errors.load(Ordering::Relaxed),
        panics: stats.panics.load(Ordering::Relaxed),
        deadline_exceeded: stats.deadline_exceeded.load(Ordering::Relaxed),
        rejected_overloaded: stats.rejected_overloaded.load(Ordering::Relaxed),
        shed: stats.shed.load(Ordering::Relaxed),
        rejected_draining: stats.rejected_draining.load(Ordering::Relaxed),
        bad_lines: stats.bad_lines.load(Ordering::Relaxed),
        drained_in_flight: stats.drained_in_flight.load(Ordering::Relaxed),
        index_shards,
        index_entries,
        access_log_lines,
        slo_ms: shared.cfg.slo_ms,
        slo_target: shared.cfg.slo_target,
        slo_good,
        slo_total,
        slo_attainment: slo_attain,
        slo_burn_rate: slo_burn_rate(slo_attain, shared.cfg.slo_target),
        wall_s: shared.started.elapsed().as_secs_f64(),
        provenance: shared.provenance.clone(),
    };
    runner.stage("drain-summary", || {
        let path = mica_experiments::results_dir().join("serve-drain.json");
        let json = serde_json::to_string_pretty(&summary).expect("DrainSummary serializes");
        if let Err(e) = mica_fault::atomic_write_retry("serve-drain", &path, json.as_bytes()) {
            obs::warn!("cannot write drain summary {}: {e}", path.display());
        } else {
            obs::info!("drain summary written to {}", path.display());
        }
    });
    runner.finish();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_fires_expired_and_forgets_orphans() {
        let wd = Watchdog { entries: Mutex::new(Vec::new()) };
        let now = Instant::now();
        let expired = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicBool::new(false));
        wd.register(now - Duration::from_millis(1), Arc::clone(&expired));
        wd.register(now + Duration::from_secs(60), Arc::clone(&live));
        // An orphan: the job finished and dropped its clone already.
        wd.register(now + Duration::from_secs(60), Arc::new(AtomicBool::new(false)));
        wd.sweep(Instant::now());
        assert!(expired.load(Ordering::Relaxed));
        assert!(!live.load(Ordering::Relaxed));
        assert_eq!(wd.entries.lock().unwrap().len(), 1);
    }

    #[test]
    fn slo_math_is_pinned_down() {
        // Nothing answered = perfect attainment, zero burn.
        assert_eq!(slo_attainment(0, 0), 1.0);
        assert_eq!(slo_burn_rate(slo_attainment(0, 0), 0.99), 0.0);
        assert_eq!(slo_attainment(3, 4), 0.75);
        // Missing 2% against a 1% budget burns at 2x.
        assert!((slo_burn_rate(0.98, 0.99) - 2.0).abs() < 1e-6);
        // A degenerate target of ~1.0 must not divide by zero.
        assert!(slo_burn_rate(0.5, 1.0 - f64::MIN_POSITIVE).is_finite());
    }

    #[test]
    fn deadline_slack_is_signed() {
        let now = Instant::now();
        assert!(deadline_slack_ms(now + Duration::from_millis(250), now) >= 249);
        assert!(deadline_slack_ms(now - Duration::from_millis(250), now) <= -249);
    }

    #[test]
    fn access_entry_round_trips() {
        let entry = AccessEntry {
            ts_us: 123_456,
            id: "q7".into(),
            trace: "00000000deadbeef".into(),
            kind: "asm".into(),
            outcome: "deadline".into(),
            queue_wait_us: 1_500,
            exec_us: 98_000,
            fuel: 50_000,
            deadline_slack_ms: -12,
        };
        let json = serde_json::to_string(&entry).unwrap();
        let back: AccessEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn drain_summary_round_trips() {
        let summary = DrainSummary {
            accepted: 5,
            ok: 3,
            errors: 1,
            panics: 1,
            deadline_exceeded: 0,
            rejected_overloaded: 2,
            shed: 1,
            rejected_draining: 1,
            bad_lines: 0,
            drained_in_flight: 2,
            index_shards: 4,
            index_entries: 7,
            access_log_lines: 9,
            slo_ms: 1_000,
            slo_target: 0.99,
            slo_good: 3,
            slo_total: 5,
            slo_attainment: 0.6,
            slo_burn_rate: 40.0,
            wall_s: 1.25,
            provenance: Provenance {
                server: "mica-serve test".into(),
                table_fingerprint: 1,
                profile_fingerprint: 2,
                scale: 1.0,
                backend: "batch".into(),
                threads: 4,
                selected_metrics: vec![0, 3],
                ga_rho: 0.8,
                env: vec![],
            },
        };
        let json = serde_json::to_string(&summary).unwrap();
        let back: DrainSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
    }
}

//! Query execution: one submission in, one structured outcome out.
//!
//! The engine owns everything immutable a query needs — the warm
//! [`ProfileSet`] (the same `profiles.json` cache the batch pipeline
//! writes, so `table` answers are byte-identical to it), the
//! [`QuerySpace`], and the provenance block — plus the mutable submission
//! index that caches computed `zoo`/`asm` answers across requests and is
//! flushed to sharded JSON on drain.
//!
//! [`Engine::execute`] runs *inside* the server's
//! [`mica_par::par_map_isolated`] dispatch, so a panic anywhere in here —
//! including one injected with `MICA_FAULTS=panic:request=N` — is caught
//! and turned into a structured `panic` response by the caller, never
//! killing the server.

use crate::protocol::{status, NeighborEntry, QueryResult, Request, RequestKind};
use crate::{asmtext, ServeConfig};
use mica_core::Backend;
use mica_experiments::profile::{
    characterize_vm_sliced, load_or_profile_all, scaled_budget,
    validate_scale, ProfileError, SlicedRun,
};
use mica_experiments::query::{DistanceMetric, QuerySpace};
use mica_experiments::results::ProfileSet;
use mica_obs as obs;
use mica_workloads::{benchmark_table, BenchmarkSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Queries answered from the warm profile set or the submission index.
static CACHE_HITS: obs::Counter = obs::Counter::new("serve.cache.hit");
/// Queries that ran a fresh simulation.
static SIMULATED: obs::Counter = obs::Counter::new("serve.simulated");
/// Dynamic instructions executed on behalf of submissions.
static INSTS: obs::Counter = obs::Counter::new("serve.insts");

/// Number of submission-index shards.
pub const INDEX_SHARDS: u64 = 4;

/// One cached submission answer, as stored in the sharded index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// Canonical submission key (kind, name/program hash, parameters).
    pub key: String,
    /// Display name of the submission.
    pub name: String,
    /// Raw 47-metric vector.
    pub vector: Vec<f64>,
    /// Instructions the original simulation executed.
    pub executed_instructions: u64,
}

/// One shard file: entries sorted by key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexShard {
    /// Profile-layout fingerprint the entries were computed under; a
    /// mismatched shard is discarded on load.
    pub fingerprint: u64,
    /// The cached answers.
    pub entries: Vec<IndexEntry>,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What `execute` decided, before the server stamps id/provenance.
pub struct Outcome {
    /// Status code for the response.
    pub status: &'static str,
    /// Diagnostics for non-`ok` statuses.
    pub error: Option<String>,
    /// The answer, on `ok`.
    pub result: Option<QueryResult>,
}

impl Outcome {
    fn fail(message: impl Into<String>) -> Outcome {
        Outcome { status: status::ERROR, error: Some(message.into()), result: None }
    }

    fn deadline(executed: u64, detail: &str) -> Outcome {
        Outcome {
            status: status::DEADLINE,
            error: Some(format!("deadline exceeded ({detail}; executed {executed} instructions)")),
            result: None,
        }
    }
}

/// The immutable query core plus the submission index.
pub struct Engine {
    set: ProfileSet,
    space: QuerySpace,
    by_name: BTreeMap<String, usize>,
    table: Vec<BenchmarkSpec>,
    backend: Backend,
    scale: f64,
    index: Mutex<BTreeMap<String, IndexEntry>>,
    index_dir: PathBuf,
}

impl Engine {
    /// Boot the engine: load (or compute and cache) the reference
    /// profiles, build the GA query space, and warm the submission index
    /// from any shards a previous run drained.
    ///
    /// # Errors
    ///
    /// Propagates profiling failures; a missing or stale submission index
    /// is not an error (it simply starts empty).
    pub fn boot() -> Result<Engine, ProfileError> {
        let results = mica_experiments::results_dir();
        let scale = mica_experiments::scale();
        let backend = Backend::from_env();
        let outcome = load_or_profile_all(&results.join("profiles.json"), scale)?;
        if !outcome.quarantined.is_empty() {
            // A server answering from a partial reference set would compare
            // submissions against a space missing benchmarks; refuse loudly
            // in the log but keep serving what completed.
            obs::warn!(
                "serving with {} reference benchmarks quarantined",
                outcome.quarantined.len()
            );
        }
        let set = outcome.set;
        let space = QuerySpace::build(&set, 8);
        let by_name = set.records.iter().enumerate().map(|(i, r)| (r.name.clone(), i)).collect();
        let index_dir = results.join("serve-index");
        // `profile_fingerprint()` re-assembles all 122 reference kernels per
        // call; the loaded set already carries the value, so thread it through
        // instead of recomputing per shard.
        let index = load_index(&index_dir, set.fingerprint);
        if !index.is_empty() {
            obs::info!("warmed submission index with {} entries", index.len());
        }
        Ok(Engine {
            set,
            space,
            by_name,
            table: benchmark_table(),
            backend,
            scale,
            index: Mutex::new(index),
            index_dir,
        })
    }

    /// The warm reference set (tests compare response vectors against it).
    pub fn profiles(&self) -> &ProfileSet {
        &self.set
    }

    /// The query space (provenance reads the GA selection from it).
    pub fn space(&self) -> &QuerySpace {
        &self.space
    }

    /// Whether this request can be answered without simulation — used by
    /// admission control: cache-served lookups stay admissible above the
    /// load-shedding watermark, expensive ones are shed.
    pub fn is_cheap(&self, req: &Request) -> bool {
        match req.kind {
            // Ops queries never reach the queue, but admission still asks.
            RequestKind::Table | RequestKind::Ops => true,
            RequestKind::Zoo | RequestKind::Asm => match submission_key(req) {
                Some(key) => self.index.lock().expect("index poisoned").contains_key(&key),
                None => false,
            },
        }
    }

    /// Run one submission to an [`Outcome`]. Runs under panic isolation;
    /// cooperative cancellation via `cancel` (set by the watchdog when
    /// `deadline_at` passes).
    pub fn execute(
        &self,
        req: &Request,
        deadline_at: Instant,
        cancel: &AtomicBool,
        cfg: &ServeConfig,
    ) -> Outcome {
        let mut span = obs::span("serve", format!("req:{}", req.id));
        span.attr("kind", req.kind.name());

        // Fault injection: latency first (it can push the request past its
        // deadline — CI's hung-submission case), then the request panic
        // (caught by the isolation layer).
        if let Some(ms) = mica_fault::plan::slow_fault("serve.request") {
            obs::warn!("injected latency: request {} sleeping {ms}ms (MICA_FAULTS)", req.id);
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        if mica_fault::plan::should_panic_request() {
            panic!("injected fault: request (MICA_FAULTS)");
        }

        let metric = match req.metric.as_deref() {
            None => DistanceMetric::Euclidean,
            Some(name) => match DistanceMetric::parse(name) {
                Some(m) => m,
                None => {
                    return Outcome::fail(format!(
                        "unknown metric `{name}` (want euclidean or cosine)"
                    ))
                }
            },
        };
        let k = req.k.unwrap_or(5).clamp(1, self.set.records.len() as u64) as usize;

        if cancel.load(Ordering::Relaxed) || Instant::now() >= deadline_at {
            return Outcome::deadline(0, "expired before execution");
        }

        let (name, vector, executed, cached) = match self.resolve(req, deadline_at, cancel, cfg) {
            Ok(Some(parts)) => parts,
            Ok(None) => return Outcome::deadline(0, "expired before execution"),
            Err(outcome) => return outcome,
        };

        let projection = match self.space.project(&vector) {
            Some(p) => p,
            None => return Outcome::fail("characterization has unexpected dimensionality"),
        };
        let neighbors = self
            .space
            .neighbors(&projection, k, metric)
            .into_iter()
            .map(|nb| NeighborEntry { name: nb.name, distance: nb.distance })
            .collect();
        span.attr("cached", u64::from(cached));
        Outcome {
            status: status::OK,
            error: None,
            result: Some(QueryResult {
                name,
                vector,
                projection,
                neighbors,
                metric: metric.name().to_string(),
                executed_instructions: executed,
                cached,
            }),
        }
    }

    /// Resolve the submission to `(name, raw vector, executed, cached)`.
    /// `Ok(None)` means the run was cancelled cleanly (deadline).
    #[allow(clippy::type_complexity)]
    fn resolve(
        &self,
        req: &Request,
        deadline_at: Instant,
        cancel: &AtomicBool,
        cfg: &ServeConfig,
    ) -> Result<Option<(String, Vec<f64>, u64, bool)>, Outcome> {
        match req.kind {
            RequestKind::Table => {
                let name = req.name.as_deref().ok_or_else(|| {
                    Outcome::fail("table requests need `name` (suite/program/input)")
                })?;
                let &i = self.by_name.get(name).ok_or_else(|| {
                    Outcome::fail(format!("unknown benchmark `{name}`"))
                })?;
                let rec = &self.set.records[i];
                CACHE_HITS.incr();
                Ok(Some((
                    rec.name.clone(),
                    rec.mica.values().to_vec(),
                    rec.executed_instructions,
                    true,
                )))
            }
            RequestKind::Zoo => {
                let name = req.name.as_deref().ok_or_else(|| {
                    Outcome::fail("zoo requests need `name` (suite/program/input)")
                })?;
                let spec = self
                    .table
                    .iter()
                    .find(|s| s.name() == name)
                    .ok_or_else(|| Outcome::fail(format!("unknown benchmark `{name}`")))?;
                let scale = req.scale.unwrap_or(self.scale);
                validate_scale(scale).map_err(|e| Outcome::fail(e.to_string()))?;
                let seed = req.seed.unwrap_or_else(|| spec.seed());
                let budget = scaled_budget(spec, scale);
                let key = submission_key(req).expect("zoo key");
                if let Some(hit) = self.index_get(&key) {
                    return Ok(Some((hit.name, hit.vector, hit.executed_instructions, true)));
                }
                let mut vm = spec
                    .kernel
                    .build_vm(seed)
                    .map_err(|e| Outcome::fail(format!("kernel failed to assemble: {e}")))?;
                let display = format!("{name}?seed={seed}&scale={scale}");
                self.simulate(&mut vm, Some(budget), deadline_at, cancel, cfg, key, display)
            }
            RequestKind::Asm => {
                let text = req
                    .asm
                    .as_deref()
                    .ok_or_else(|| Outcome::fail("asm requests need `asm` (program text)"))?;
                let prog = asmtext::assemble(text).map_err(|e| Outcome::fail(e.to_string()))?;
                let key = submission_key(req).expect("asm key");
                if let Some(hit) = self.index_get(&key) {
                    return Ok(Some((hit.name, hit.vector, hit.executed_instructions, true)));
                }
                let mut vm = tinyisa::Vm::new(prog);
                let display = format!("asm:{:016x}", fnv1a(text.as_bytes()));
                self.simulate(&mut vm, req.budget, deadline_at, cancel, cfg, key, display)
            }
            // The server answers ops on the reader thread; one slipping
            // through to the engine is a dispatch bug, answered loudly.
            RequestKind::Ops => Err(Outcome::fail("ops requests are not executable submissions")),
        }
    }

    /// Run a VM under the deadline-derived fuel budget and record the
    /// answer in the submission index. `requested: None` (budget-less
    /// `asm`) spends exactly the deadline's remaining fuel allowance.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn simulate(
        &self,
        vm: &mut tinyisa::Vm,
        requested: Option<u64>,
        deadline_at: Instant,
        cancel: &AtomicBool,
        cfg: &ServeConfig,
        key: String,
        name: String,
    ) -> Result<Option<(String, Vec<f64>, u64, bool)>, Outcome> {
        let allowance = fuel_allowance(deadline_at, cfg);
        let budget = requested.unwrap_or(allowance).max(1);
        if budget > allowance {
            // The deadline cannot pay for this budget; refuse up front
            // instead of running a truncated (incomparable) simulation.
            return Err(Outcome::deadline(
                0,
                &format!("budget {budget} exceeds the deadline's fuel allowance {allowance}"),
            ));
        }
        SIMULATED.incr();
        let run = characterize_vm_sliced(vm, budget, self.backend, cfg.slice, || {
            cancel.load(Ordering::Relaxed)
        })
        .map_err(|e| Outcome::fail(e.to_string()))?;
        match run {
            SlicedRun::Cancelled { executed } => {
                INSTS.add(executed);
                Err(Outcome::deadline(executed, "cancelled by watchdog"))
            }
            SlicedRun::Done { mica, executed } => {
                INSTS.add(executed);
                let vector = mica.values().to_vec();
                let entry = IndexEntry {
                    key: key.clone(),
                    name: name.clone(),
                    vector: vector.clone(),
                    executed_instructions: executed,
                };
                self.index.lock().expect("index poisoned").insert(key, entry);
                Ok(Some((name, vector, executed, false)))
            }
        }
    }

    fn index_get(&self, key: &str) -> Option<IndexEntry> {
        let hit = self.index.lock().expect("index poisoned").get(key).cloned();
        if hit.is_some() {
            CACHE_HITS.incr();
        }
        hit
    }

    /// Flush the submission index to its shards via
    /// [`mica_fault::atomic_write_retry`] (site `serve-index`). Returns
    /// `(shards_written, entries)`.
    pub fn flush_index(&self) -> (u64, u64) {
        let index = self.index.lock().expect("index poisoned");
        let total = index.len() as u64;
        if let Err(e) = std::fs::create_dir_all(&self.index_dir) {
            obs::warn!("cannot create {}: {e}", self.index_dir.display());
            return (0, total);
        }
        let mut written = 0;
        let fingerprint = self.set.fingerprint;
        for shard_no in 0..INDEX_SHARDS {
            let entries: Vec<IndexEntry> = index
                .values()
                .filter(|e| fnv1a(e.key.as_bytes()) % INDEX_SHARDS == shard_no)
                .cloned()
                .collect();
            let shard = IndexShard { fingerprint, entries };
            let path = self.index_dir.join(format!("shard-{shard_no}.json"));
            let json = serde_json::to_string_pretty(&shard).expect("IndexShard serializes");
            match mica_fault::atomic_write_retry("serve-index", &path, json.as_bytes()) {
                Ok(()) => written += 1,
                Err(e) => obs::warn!("cannot write index shard {}: {e}", path.display()),
            }
        }
        (written, total)
    }
}

/// The canonical cache key of a submission, or `None` for kinds that are
/// not cached (`table` answers live in the profile set).
fn submission_key(req: &Request) -> Option<String> {
    match req.kind {
        RequestKind::Table | RequestKind::Ops => None,
        RequestKind::Zoo => {
            let name = req.name.as_deref()?;
            Some(format!(
                "zoo|{name}|{}|{:016x}",
                req.seed.map(|s| s.to_string()).unwrap_or_else(|| "default".into()),
                req.scale.unwrap_or(f64::NAN).to_bits()
            ))
        }
        RequestKind::Asm => {
            let text = req.asm.as_deref()?;
            Some(format!(
                "asm|{:016x}|{}",
                fnv1a(text.as_bytes()),
                req.budget.map(|b| b.to_string()).unwrap_or_else(|| "auto".into())
            ))
        }
    }
}

/// Instructions the remaining time to `deadline_at` can pay for.
fn fuel_allowance(deadline_at: Instant, cfg: &ServeConfig) -> u64 {
    let remaining_ms = deadline_at.saturating_duration_since(Instant::now()).as_millis() as u64;
    remaining_ms.saturating_mul(cfg.fuel_per_ms).max(1)
}

/// Load every readable, fingerprint-current shard; anything else is
/// skipped with a warning (a stale index is a cache, not state).
fn load_index(dir: &std::path::Path, fingerprint: u64) -> BTreeMap<String, IndexEntry> {
    let mut map = BTreeMap::new();
    for shard_no in 0..INDEX_SHARDS {
        let path = dir.join(format!("shard-{shard_no}.json"));
        let json = match std::fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => {
                obs::warn!("skipping index shard {}: {e}", path.display());
                continue;
            }
        };
        match serde_json::from_str::<IndexShard>(&json) {
            Ok(shard) if shard.fingerprint == fingerprint => {
                for e in shard.entries {
                    map.insert(e.key.clone(), e);
                }
            }
            Ok(shard) => obs::warn!(
                "discarding index shard {} (fingerprint {:#x} != {:#x})",
                path.display(),
                shard.fingerprint,
                fingerprint
            ),
            Err(e) => obs::warn!("discarding unparseable index shard {}: {e}", path.display()),
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submission_keys_are_canonical_and_distinct() {
        let mut zoo = Request::new("a", RequestKind::Zoo);
        zoo.name = Some("s/p/i".into());
        zoo.seed = Some(7);
        let k1 = submission_key(&zoo).unwrap();
        zoo.seed = Some(8);
        let k2 = submission_key(&zoo).unwrap();
        assert_ne!(k1, k2);
        assert!(k1.starts_with("zoo|s/p/i|7|"));

        let mut asm = Request::new("b", RequestKind::Asm);
        asm.asm = Some("halt".into());
        let k3 = submission_key(&asm).unwrap();
        asm.asm = Some("ret".into());
        assert_ne!(k3, submission_key(&asm).unwrap());

        assert_eq!(submission_key(&Request::new("c", RequestKind::Table)), None);
    }

    #[test]
    fn fuel_allowance_scales_with_remaining_time() {
        let cfg = ServeConfig { fuel_per_ms: 1_000, ..ServeConfig::default() };
        let far = Instant::now() + std::time::Duration::from_millis(100);
        let a = fuel_allowance(far, &cfg);
        assert!(a >= 90_000 && a <= 100_000, "allowance {a}");
        // An expired deadline still allows the minimum 1 instruction.
        assert_eq!(fuel_allowance(Instant::now(), &cfg), 1);
    }
}

//! The retrying client: connect, submit, honor backpressure.
//!
//! One query is one connection attempt per retry: connect, write the
//! request line, read the response line. `overloaded` and `draining`
//! replies are *backpressure*, not answers — the client sleeps for the
//! larger of the server's `retry_after_ms` hint and its own capped
//! exponential backoff with deterministic site-seeded jitter
//! ([`mica_fault::io::backoff_ms`], site `serve-client`), then tries
//! again. Transport errors (connection refused, dropped responses — e.g.
//! a server running with `MICA_FAULTS=io:respond`) retry the same way, so
//! a flaky server and a busy server look identical to the caller: either
//! an answer eventually, or a [`ClientError`] after the attempt budget.

use crate::protocol::{status, Request, Response};
use mica_obs as obs;
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Backoff site: seeds the deterministic jitter.
const BACKOFF_SITE: &str = "serve-client";

/// Why a query gave up.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failed on the last attempt (connect, write, read or
    /// parse; the string says which).
    Transport(String),
    /// Every attempt was rejected with backpressure; the last rejection
    /// is enclosed.
    Exhausted(Response),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport failed: {e}"),
            ClientError::Exhausted(resp) => write!(
                f,
                "server still {} after retries: {}",
                resp.status,
                resp.error.as_deref().unwrap_or("(no detail)")
            ),
        }
    }
}

impl std::error::Error for ClientError {}

fn attempt(addr: &str, line: &str) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream.write_all(line.as_bytes()).map_err(|e| format!("send: {e}"))?;
    let mut reply = String::new();
    let mut reader = BufReader::new(stream);
    let n = reader.read_line(&mut reply).map_err(|e| format!("receive: {e}"))?;
    if n == 0 {
        return Err("server closed the connection without replying".into());
    }
    serde_json::from_str::<Response>(reply.trim_end())
        .map_err(|e| format!("unparseable response: {e}"))
}

/// Submit `req` to the server at `addr`, retrying backpressure and
/// transport failures up to `retries` additional attempts.
///
/// The returned [`Response`] may still carry a non-`ok` status (`error`,
/// `panic`, `deadline`): those are definitive answers about the
/// submission and are **not** retried.
///
/// # Errors
///
/// [`ClientError::Transport`] when the final attempt failed in transit;
/// [`ClientError::Exhausted`] when the final attempt was still rejected
/// with backpressure.
pub fn query(addr: &str, req: &Request, retries: u32) -> Result<Response, ClientError> {
    let mut line = render_request(req);
    line.push('\n');
    let mut last_err: Option<ClientError> = None;
    for attempt_no in 1..=retries.saturating_add(1) {
        match attempt(addr, &line) {
            Ok(resp) if resp.status == status::OVERLOADED || resp.status == status::DRAINING => {
                let backoff = mica_fault::io::backoff_ms(BACKOFF_SITE, attempt_no)
                    .max(resp.retry_after_ms.unwrap_or(0));
                obs::debug!(
                    "request {} got {} (attempt {attempt_no}), backing off {backoff}ms",
                    req.id,
                    resp.status
                );
                last_err = Some(ClientError::Exhausted(resp));
                std::thread::sleep(Duration::from_millis(backoff));
            }
            Ok(resp) => return Ok(resp),
            Err(e) => {
                let backoff = mica_fault::io::backoff_ms(BACKOFF_SITE, attempt_no);
                obs::debug!(
                    "request {} transport error (attempt {attempt_no}): {e}; backing off {backoff}ms",
                    req.id
                );
                last_err = Some(ClientError::Transport(e));
                std::thread::sleep(Duration::from_millis(backoff));
            }
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

/// Render a request as its wire line (no trailing newline).
pub fn render_request(req: &Request) -> String {
    serde_json::to_string(&req.to_value()).expect("Request serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::RequestKind;

    #[test]
    fn transport_errors_are_retried_then_reported() {
        // Nothing listens on this port (bound but not accepting is racy;
        // a refused connect on a closed port is reliable).
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let req = Request::new("t1", RequestKind::Table);
        let err = query(&addr, &req, 2).unwrap_err();
        assert!(matches!(err, ClientError::Transport(_)), "got {err}");
    }

    #[test]
    fn request_lines_are_single_line_json() {
        let mut req = Request::new("t2", RequestKind::Asm);
        req.asm = Some("li x7, 1\nhalt".into());
        let line = render_request(&req);
        assert!(!line.contains('\n'), "wire lines must be single-line: {line}");
        assert_eq!(crate::protocol::parse_request(&line).unwrap(), req);
    }
}

//! The 122 benchmark instances of Table I, recreated as algorithm kernels
//! for the [`tinyisa`] VM.
//!
//! The paper characterizes 122 benchmarks from 6 suites (BioInfoMark,
//! BioMetricsWorkload, CommBench, MediaBench, MiBench, SPEC CPU2000)
//! compiled for the Alpha ISA. Those binaries (and the machines to run them)
//! are not available, so this crate substitutes hand-written kernels that
//! implement the same *algorithms* — banded sequence alignment, FFTs, DCT
//! codecs, LZ compression, Feistel ciphers, shortest paths, pointer-chasing
//! network optimization, software rasterization, bytecode interpretation,
//! and so on — parameterized per benchmark instance (working-set sizes,
//! alphabet sizes, entropy of inputs, ...) to reproduce the *inherent
//! behavioral diversity* the methodology measures.
//!
//! Entry points:
//!
//! - [`benchmark_table`] — the full 122-entry table (suite, program, input,
//!   kernel, instruction budget);
//! - [`BenchmarkSpec::build_vm`] — assemble the kernel and initialize its
//!   data segments, ready to run against any
//!   [`TraceSink`](tinyisa::TraceSink);
//! - [`Kernel`] — the kernel zoo itself, usable directly.
//!
//! # Example
//!
//! ```
//! use mica_workloads::{benchmark_table, Suite};
//! use tinyisa::CountingSink;
//!
//! let table = benchmark_table();
//! assert_eq!(table.len(), 122);
//! let crc = table.iter().find(|b| b.program == "CRC32").unwrap();
//! assert_eq!(crc.suite, Suite::MiBench);
//!
//! let mut vm = crc.build_vm().expect("kernel assembles");
//! let mut sink = tinyisa::CountingSink::default();
//! vm.run(&mut sink, 10_000).unwrap();
//! assert_eq!(sink.retired(), 10_000); // kernels run until out of fuel
//! # let _ = CountingSink::default();
//! ```

mod data;
pub mod kernels;
mod table;

pub use kernels::Kernel;
pub use table::{benchmark_table, table_fingerprint, BenchmarkSpec, Suite, NUM_BENCHMARKS};

/// Base address of the primary data segment used by all kernels.
pub const DATA_BASE: u64 = 0x0100_0000;
/// Base address of the secondary data segment (tables, outputs).
pub const DATA2_BASE: u64 = 0x0800_0000;
/// Base address of the third data segment (large auxiliary structures).
pub const DATA3_BASE: u64 = 0x4000_0000;
/// Conventional initial stack pointer (grows down).
pub const STACK_TOP: u64 = 0x00f0_0000;

//! Remaining kernel families: a bytecode interpreter, bitboard operations,
//! quicksort, a small ray tracer, packet queue scheduling, and greedy text
//! layout.

use crate::data::DataGen;
use crate::{DATA2_BASE, DATA3_BASE, DATA_BASE, STACK_TOP};
use tinyisa::{regs::*, Asm, AsmError, Vm};

/// perlbmk/gap-class bytecode interpreter: fetch a 4-byte instruction
/// (op, dst, src1, src2) over 16 memory-resident virtual registers and
/// dispatch through a compare chain — big I-footprint, hard branches.
pub(crate) fn interp(program_len: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // bytecode
    a.li(S1, DATA2_BASE as i64); // virtual registers (u64 x 16)
    a.li(S2, DATA3_BASE as i64); // virtual heap (64 KiB)
    a.li(S3, program_len as i64);
    let outer = a.label();
    a.bind(outer);
    let fetch = a.label();
    a.li(S4, 0); // vpc
    a.bind(fetch);
    a.slli(T0, S4, 2);
    a.add(T0, S0, T0);
    a.ld1(T1, T0, 0); // opcode
    a.ld1(T2, T0, 1); // dst
    a.ld1(T3, T0, 2); // src1
    a.ld1(T4, T0, 3); // src2
    // Read the two source virtual registers.
    a.slli(T5, T3, 3);
    a.add(T5, S1, T5);
    a.ld8(T5, T5, 0); // v1
    a.slli(T6, T4, 3);
    a.add(T6, S1, T6);
    a.ld8(T6, T6, 0); // v2
    let next = a.label();
    let mut op_labels = Vec::new();
    for _ in 0..8 {
        op_labels.push(a.label());
    }
    // Dispatch chain.
    for (opc, &l) in op_labels.iter().enumerate() {
        a.slti(T7, T1, opc as i64 + 1);
        a.bne(T7, ZERO, l);
    }
    a.jmp(next); // unknown op: nop
    // op 0: add
    a.bind(op_labels[0]);
    a.add(T8, T5, T6);
    a.slli(T9, T2, 3);
    a.add(T9, S1, T9);
    a.st8(T8, T9, 0);
    a.jmp(next);
    // op 1: sub
    a.bind(op_labels[1]);
    a.sub(T8, T5, T6);
    a.slli(T9, T2, 3);
    a.add(T9, S1, T9);
    a.st8(T8, T9, 0);
    a.jmp(next);
    // op 2: mul
    a.bind(op_labels[2]);
    a.mul(T8, T5, T6);
    a.slli(T9, T2, 3);
    a.add(T9, S1, T9);
    a.st8(T8, T9, 0);
    a.jmp(next);
    // op 3: xor
    a.bind(op_labels[3]);
    a.xor(T8, T5, T6);
    a.slli(T9, T2, 3);
    a.add(T9, S1, T9);
    a.st8(T8, T9, 0);
    a.jmp(next);
    // op 4: load heap[v1 & mask]
    a.bind(op_labels[4]);
    a.andi(T8, T5, 0xffff);
    a.andi(T8, T8, -8);
    a.add(T8, S2, T8);
    a.ld8(T8, T8, 0);
    a.slli(T9, T2, 3);
    a.add(T9, S1, T9);
    a.st8(T8, T9, 0);
    a.jmp(next);
    // op 5: store heap[v1 & mask] = v2
    a.bind(op_labels[5]);
    a.andi(T8, T5, 0xffff);
    a.andi(T8, T8, -8);
    a.add(T8, S2, T8);
    a.st8(T6, T8, 0);
    a.jmp(next);
    // op 6: conditional skip (if v1 < v2, vpc += 1)
    let no_skip = a.label();
    a.bind(op_labels[6]);
    a.bge(T5, T6, no_skip);
    a.addi(S4, S4, 1);
    a.bind(no_skip);
    a.jmp(next);
    // op 7: increment dst register by immediate in src1 field
    a.bind(op_labels[7]);
    a.slli(T9, T2, 3);
    a.add(T9, S1, T9);
    a.ld8(T8, T9, 0);
    a.add(T8, T8, T3);
    a.st8(T8, T9, 0);
    // Intentional jump-to-fallthrough (mica-lint warns): the last opcode
    // handler's dispatch-merge jump, kept for the characterized control mix.
    a.jmp(next);
    a.bind(next);
    a.addi(S4, S4, 1);
    a.blt(S4, S3, fetch);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    for i in 0..program_len {
        let base = DATA_BASE + i * 4;
        vm.mem_mut().write_u8(base, g.below(8) as u8);
        vm.mem_mut().write_u8(base + 1, g.below(16) as u8);
        vm.mem_mut().write_u8(base + 2, g.below(16) as u8);
        vm.mem_mut().write_u8(base + 3, g.below(16) as u8);
    }
    for r in 0..16 {
        vm.mem_mut().write_le(DATA2_BASE + r * 8, 8, g.next_u64());
    }
    Ok(vm)
}

/// crafty/bitcount-class bit manipulation: per word, extract set bits one at
/// a time (`x & -x`), count bits with shift-mask reduction, rotate and mix.
pub(crate) fn bitops(words: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // bitboards
    a.li(S1, words as i64);
    a.li(S2, DATA2_BASE as i64); // results
    let outer = a.label();
    a.bind(outer);
    let (w_loop, bit_loop, bits_done) = (a.label(), a.label(), a.label());
    a.li(T0, 0);
    a.bind(w_loop);
    a.slli(T1, T0, 3);
    a.add(T1, S0, T1);
    a.ld8(T2, T1, 0);
    // Extract set bits one by one.
    a.li(T3, 0); // popcount via extraction
    a.bind(bit_loop);
    a.beq(T2, ZERO, bits_done);
    a.sub(T4, ZERO, T2);
    a.and(T4, T2, T4); // lowest set bit
    a.xor(T2, T2, T4); // clear it
    a.addi(T3, T3, 1);
    a.jmp(bit_loop);
    a.bind(bits_done);
    // Shift-add reduction popcount of a mixed value (branch-free path).
    a.ld8(T5, T1, 0);
    a.li(T6, 0x5555_5555_5555_5555u64 as i64);
    a.srli(T7, T5, 1);
    a.and(T7, T7, T6);
    a.sub(T5, T5, T7);
    a.li(T6, 0x3333_3333_3333_3333u64 as i64);
    a.and(T7, T5, T6);
    a.srli(T5, T5, 2);
    a.and(T5, T5, T6);
    a.add(T5, T5, T7);
    a.li(T6, 0x0f0f_0f0f_0f0f_0f0fu64 as i64);
    a.srli(T7, T5, 4);
    a.add(T5, T5, T7);
    a.and(T5, T5, T6);
    a.li(T6, 0x0101_0101_0101_0101u64 as i64);
    a.mul(T5, T5, T6);
    a.srli(T5, T5, 56);
    a.add(T3, T3, T5);
    a.slli(T6, T0, 3);
    a.add(T6, S2, T6);
    a.st8(T3, T6, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S1, w_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_u64_below(vm.mem_mut(), DATA_BASE, words, u64::MAX);
    Ok(vm)
}

/// Iterative quicksort over `elems` 16-byte records (u64 key + u64 payload),
/// explicit segment stack — MiBench qsort.
pub(crate) fn qsort(elems: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // records
    a.li(S1, elems as i64);
    let outer = a.label();
    a.bind(outer);
    // Re-randomize the array cheaply (xorshift each key) so every pass
    // sorts fresh data.
    let scramble = a.label();
    a.li(T0, 0);
    a.bind(scramble);
    a.slli(T1, T0, 4);
    a.add(T1, S0, T1);
    a.ld8(T2, T1, 0);
    a.slli(T3, T2, 13);
    a.xor(T2, T2, T3);
    a.srli(T3, T2, 7);
    a.xor(T2, T2, T3);
    a.slli(T3, T2, 17);
    a.xor(T2, T2, T3);
    a.ori(T2, T2, 1);
    a.st8(T2, T1, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S1, scramble);
    // Push (0, n-1) onto the segment stack.
    a.li(SP, STACK_TOP as i64);
    a.addi(SP, SP, -16);
    a.st8(ZERO, SP, 0);
    a.addi(T0, S1, -1);
    a.st8(T0, SP, 8);
    let (pop_loop, done, part_loop, lo_scan, hi_scan, do_swap, part_done, push_right, no_left) = (
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
    );
    a.bind(pop_loop);
    a.li(T9, (STACK_TOP) as i64);
    a.bge(SP, T9, done);
    a.ld8(S2, SP, 0); // lo
    a.ld8(S3, SP, 8); // hi
    a.addi(SP, SP, 16);
    a.bge(S2, S3, pop_loop);
    // Canonical Hoare partition with pivot = key[lo]: both scans use
    // do-while stepping, which guarantees lo <= j < hi at the split.
    a.slli(T0, S2, 4);
    a.add(T0, S0, T0);
    a.ld8(S4, T0, 0); // pivot key
    a.addi(S5, S2, -1); // i = lo - 1
    a.addi(S6, S3, 1); // j = hi + 1
    a.bind(part_loop);
    a.bind(lo_scan);
    a.addi(S5, S5, 1);
    a.slli(T1, S5, 4);
    a.add(T1, S0, T1);
    a.ld8(T2, T1, 0);
    a.blt(T2, S4, lo_scan);
    a.bind(hi_scan);
    a.addi(S6, S6, -1);
    a.slli(T3, S6, 4);
    a.add(T3, S0, T3);
    a.ld8(T4, T3, 0);
    a.blt(S4, T4, hi_scan);
    a.bge(S5, S6, part_done);
    // Intentional jump-to-fallthrough (mica-lint warns): the partition
    // scan's merge jump, kept for the characterized control mix.
    a.jmp(do_swap);
    a.bind(do_swap);
    // Swap the 16-byte records.
    a.ld8(T5, T1, 8);
    a.ld8(T6, T3, 8);
    a.st8(T4, T1, 0);
    a.st8(T2, T3, 0);
    a.st8(T6, T1, 8);
    a.st8(T5, T3, 8);
    a.jmp(part_loop);
    a.bind(part_done);
    // Push (lo, j) and (j+1, hi) when non-trivial.
    a.bge(S2, S6, no_left);
    a.addi(SP, SP, -16);
    a.st8(S2, SP, 0);
    a.st8(S6, SP, 8);
    a.bind(no_left);
    a.addi(T7, S6, 1);
    a.bge(T7, S3, pop_loop);
    // Intentional jump-to-fallthrough (mica-lint warns): the push-right
    // guard's merge jump, kept for the characterized control mix.
    a.jmp(push_right);
    a.bind(push_right);
    a.addi(SP, SP, -16);
    a.st8(T7, SP, 0);
    a.st8(S3, SP, 8);
    a.jmp(pop_loop);
    a.bind(done);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_u64_below(vm.mem_mut(), DATA_BASE, elems * 2, u64::MAX);
    Ok(vm)
}

/// eon-class ray-sphere tracing: for each ray from a grid, test against all
/// spheres (dot products, discriminant, sqrt on hit) through a real `call`ed
/// intersection routine.
pub(crate) fn raytrace(spheres: u64, rays: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // spheres: cx, cy, cz, r (f64 x 4)
    a.li(S1, DATA2_BASE as i64); // ray dirs: dx, dy, dz (f64 x 3)
    a.li(S2, DATA3_BASE as i64); // hit distances
    a.li(S3, spheres as i64);
    a.li(S4, rays as i64);
    let (outer, r_loop, s_loop, intersect, no_hit, isect_done, keep) = (
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
    );
    a.bind(outer);
    a.li(S5, 0); // ray index
    a.bind(r_loop);
    a.li(T0, 24);
    a.mul(T0, S5, T0);
    a.add(T0, S1, T0);
    a.ldf(F10, T0, 0); // dx
    a.ldf(F11, T0, 8); // dy
    a.ldf(F12, T0, 16); // dz
    a.fli(F13, 1e30); // best t
    a.li(S6, 0); // sphere index
    a.bind(s_loop);
    a.call(intersect);
    a.fcmplt(T5, F0, F13);
    a.beq(T5, ZERO, keep);
    a.fmov(F13, F0);
    a.bind(keep);
    a.addi(S6, S6, 1);
    a.blt(S6, S3, s_loop);
    a.slli(T6, S5, 3);
    a.add(T6, S2, T6);
    a.stf(F13, T6, 0);
    a.addi(S5, S5, 1);
    a.blt(S5, S4, r_loop);
    a.jmp(outer);

    // fn intersect(sphere S6, dir F10..F12) -> F0 = t or 1e30
    a.bind(intersect);
    a.slli(T1, S6, 5);
    a.add(T1, S0, T1);
    a.ldf(F1, T1, 0); // cx (ray origin at 0)
    a.ldf(F2, T1, 8);
    a.ldf(F3, T1, 16);
    a.ldf(F4, T1, 24); // radius
    // b = dot(c, d); c2 = dot(c, c); disc = b*b - (c2 - r*r)
    a.fmul(F5, F1, F10);
    a.fmul(F6, F2, F11);
    a.fadd(F5, F5, F6);
    a.fmul(F6, F3, F12);
    a.fadd(F5, F5, F6); // b
    a.fmul(F6, F1, F1);
    a.fmul(F7, F2, F2);
    a.fadd(F6, F6, F7);
    a.fmul(F7, F3, F3);
    a.fadd(F6, F6, F7); // c2
    a.fmul(F7, F4, F4);
    a.fsub(F6, F6, F7); // c2 - r^2
    a.fmul(F7, F5, F5);
    a.fsub(F7, F7, F6); // disc
    a.fli(F8, 0.0);
    a.fcmplt(T2, F7, F8);
    a.bne(T2, ZERO, no_hit);
    a.fsqrt(F7, F7);
    a.fsub(F0, F5, F7); // t = b - sqrt(disc)
    a.fcmplt(T2, F0, F8);
    a.bne(T2, ZERO, no_hit);
    a.jmp(isect_done);
    a.bind(no_hit);
    a.fli(F0, 1e30);
    a.bind(isect_done);
    a.ret();

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    for s in 0..spheres {
        let base = DATA_BASE + s * 32;
        vm.mem_mut().write_f64(base, g.unit_f64() * 20.0 - 10.0);
        vm.mem_mut().write_f64(base + 8, g.unit_f64() * 20.0 - 10.0);
        vm.mem_mut().write_f64(base + 16, g.unit_f64() * 20.0 + 5.0);
        vm.mem_mut().write_f64(base + 24, g.unit_f64() * 2.0 + 0.2);
    }
    for r in 0..rays {
        let base = DATA2_BASE + r * 24;
        vm.mem_mut().write_f64(base, g.unit_f64() - 0.5);
        vm.mem_mut().write_f64(base + 8, g.unit_f64() - 0.5);
        vm.mem_mut().write_f64(base + 16, 1.0);
    }
    Ok(vm)
}

/// Which packet-processing discipline the `QueueSched` kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedKind {
    /// Deficit round robin over per-flow queues (CommBench drr).
    Drr,
    /// IP fragmentation: split packets into MTU-sized chunks with header
    /// rewrites and payload copies (CommBench frag).
    Frag,
    /// TCP monitoring: header parse + checksum + flow-table update
    /// (CommBench tcp).
    Tcp,
}

/// CommBench-class packet processing over a synthetic packet trace.
pub(crate) fn queue_sched(packets: u64, kind: SchedKind, seed: u64) -> Result<Vm, AsmError> {
    let pkt_bytes = 64u64; // descriptor: len u32, flow u32, payload 56 B
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // packet trace
    if !matches!(kind, SchedKind::Frag) {
        a.li(S1, DATA2_BASE as i64); // flow state table (u64 x 1024)
    }
    if !matches!(kind, SchedKind::Tcp) {
        a.li(S2, DATA3_BASE as i64); // output area
    }
    a.li(S3, packets as i64);
    let outer = a.label();
    a.bind(outer);
    let p_loop = a.label();
    a.li(T0, 0); // packet index
    if !matches!(kind, SchedKind::Tcp) {
        a.li(S6, 0); // output cursor
    }
    a.bind(p_loop);
    a.slli(T1, T0, 6);
    a.add(T1, S0, T1); // packet base
    a.ld4(T2, T1, 0); // len
    a.ld4(T3, T1, 4); // flow id
    match kind {
        SchedKind::Drr => {
            // deficit[flow] += quantum; if deficit >= len: send, deficit -= len.
            let skip = a.label();
            a.andi(T3, T3, 1023);
            a.slli(T4, T3, 3);
            a.add(T4, S1, T4);
            a.ld8(T5, T4, 0);
            a.addi(T5, T5, 512); // quantum
            a.blt(T5, T2, skip);
            a.sub(T5, T5, T2);
            a.add(T6, S2, S6);
            a.st4(T3, T6, 0); // record serviced flow
            a.addi(S6, S6, 4);
            a.bind(skip);
            a.st8(T5, T4, 0);
        }
        SchedKind::Frag => {
            // Copy the payload in 16-byte MTU chunks with a 4-byte header
            // prepended to each fragment.
            let (frag_loop, copy_loop, frag_end) = (a.label(), a.label(), a.label());
            a.li(T4, 0); // offset
            a.bind(frag_loop);
            a.bge(T4, T2, frag_end);
            // header = flow | offset<<16
            a.slli(T5, T4, 16);
            a.or(T5, T5, T3);
            a.add(T6, S2, S6);
            a.st4(T5, T6, 0);
            a.addi(S6, S6, 4);
            // copy min(16, len - offset) payload bytes
            a.li(T7, 0);
            a.bind(copy_loop);
            a.add(T8, T1, T4);
            a.add(T8, T8, T7);
            a.ld1(T9, T8, 8);
            a.add(T8, S2, S6);
            a.st1(T9, T8, 0);
            a.addi(S6, S6, 1);
            a.addi(T7, T7, 1);
            a.slti(T8, T7, 16);
            a.bne(T8, ZERO, copy_loop);
            a.addi(T4, T4, 16);
            a.jmp(frag_loop);
            a.bind(frag_end);
            // Wrap the output cursor to bound the output working set.
            a.andi(S6, S6, 0xffff);
        }
        SchedKind::Tcp => {
            // 16-bit ones-complement-ish checksum over the payload + flow
            // table hit counter.
            let ck_loop = a.label();
            a.li(T4, 0);
            a.li(T5, 0); // sum
            a.bind(ck_loop);
            a.add(T6, T1, T4);
            a.ld2(T7, T6, 8);
            a.add(T5, T5, T7);
            a.addi(T4, T4, 2);
            a.slti(T6, T4, 56);
            a.bne(T6, ZERO, ck_loop);
            a.srli(T6, T5, 16);
            a.add(T5, T5, T6);
            a.andi(T5, T5, 0xffff);
            a.andi(T3, T3, 1023);
            a.slli(T6, T3, 3);
            a.add(T6, S1, T6);
            a.ld8(T7, T6, 0);
            a.add(T7, T7, T5);
            a.st8(T7, T6, 0);
        }
    }
    a.addi(T0, T0, 1);
    a.blt(T0, S3, p_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    for p in 0..packets {
        let base = DATA_BASE + p * pkt_bytes;
        vm.mem_mut().write_le(base, 4, g.below(48) + 8);
        // Zipf-ish flow popularity: low ids more common.
        let flow = (g.below(32) * g.below(32)) & 1023;
        vm.mem_mut().write_le(base + 4, 4, flow);
        g.fill_random(vm.mem_mut(), base + 8, 56);
    }
    Ok(vm)
}

/// typeset-class greedy line breaking over a linked list of word records
/// (width, next); accumulates line widths, justifies with div/rem, and
/// walks pointer-linked records.
pub(crate) fn text_layout(words: u64, line_width: u64, seed: u64) -> Result<Vm, AsmError> {
    let node_bytes = 24u64; // next ptr, width, flags
    let mut a = Asm::new();
    a.li(S1, line_width as i64);
    a.li(S2, DATA2_BASE as i64); // line records out
    a.li(S3, words as i64);
    let outer = a.label();
    a.bind(outer);
    let (w_loop, flush, no_flush, list_end) = (a.label(), a.label(), a.label(), a.label());
    a.li(T9, DATA_BASE as i64);
    a.ld8(S0, T9, 0); // head pointer parked at DATA_BASE
    a.li(T0, 0); // words consumed
    a.li(T1, 0); // current line width
    a.li(T2, 0); // words on line
    a.li(S6, 0); // output cursor
    a.bind(w_loop);
    a.bge(T0, S3, list_end);
    a.ld8(T3, S0, 8); // word width
    a.add(T4, T1, T3);
    a.bge(T4, S1, flush);
    a.mov(T1, T4);
    a.addi(T1, T1, 1); // inter-word space
    a.addi(T2, T2, 1);
    a.jmp(no_flush);
    a.bind(flush);
    // Justify: distribute (line_width - width) over the gaps.
    let skip_just = a.label();
    a.sub(T5, S1, T1);
    a.li(T6, 0); // justification amount for unjustifiable lines
    a.beq(T2, ZERO, skip_just);
    a.div(T6, T5, T2);
    a.rem(T7, T5, T2);
    a.add(T6, T6, T7);
    a.bind(skip_just);
    a.add(T8, S2, S6);
    a.st4(T1, T8, 0);
    a.st4(T6, T8, 4); // record the justified slack with the line width
    a.addi(S6, S6, 8);
    a.andi(S6, S6, 0xfff);
    a.mov(T1, T3);
    a.li(T2, 1);
    a.bind(no_flush);
    a.ld8(S0, S0, 0); // next word
    a.addi(T0, T0, 1);
    a.jmp(w_loop);
    a.bind(list_end);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    let head = g.build_random_ring(vm.mem_mut(), DATA_BASE + 64, words, node_bytes);
    for w in 0..words {
        let base = DATA_BASE + 64 + w * node_bytes;
        vm.mem_mut().write_le(base + 8, 8, g.below(12) + 2);
    }
    vm.mem_mut().write_le(DATA_BASE, 8, head);
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use super::SchedKind;
    use crate::kernels::test_support::mix_of;

    #[test]
    fn interp_dispatch_is_branch_heavy() {
        let mix = mix_of(super::interp(4096, 1).unwrap(), 60_000);
        assert!(mix.control > 0.2, "control {}", mix.control);
        assert!(mix.loads > 0.15);
    }

    #[test]
    fn bitops_is_alu_with_multiplies() {
        let mix = mix_of(super::bitops(4096, 2).unwrap(), 60_000);
        assert!(mix.arith > 0.5, "arith {}", mix.arith);
    }

    #[test]
    fn qsort_swaps_records() {
        let mix = mix_of(super::qsort(4096, 3).unwrap(), 100_000);
        assert!(mix.control > 0.15);
        assert!(mix.stores > 0.02);
    }

    #[test]
    fn raytrace_uses_fp_and_calls() {
        let mix = mix_of(super::raytrace(32, 256, 4).unwrap(), 80_000);
        assert!(mix.fp > 0.3, "fp {}", mix.fp);
    }

    #[test]
    fn all_sched_kinds_run() {
        for kind in [SchedKind::Drr, SchedKind::Frag, SchedKind::Tcp] {
            let mix = mix_of(super::queue_sched(512, kind, 5).unwrap(), 50_000);
            assert!(mix.loads > 0.05, "{kind:?}");
        }
    }

    #[test]
    fn frag_stores_more_than_tcp() {
        let tcp = mix_of(super::queue_sched(512, SchedKind::Tcp, 5).unwrap(), 50_000);
        let frag = mix_of(super::queue_sched(512, SchedKind::Frag, 5).unwrap(), 50_000);
        assert!(frag.stores > tcp.stores + 0.03, "frag {} vs tcp {}", frag.stores, tcp.stores);
    }

    #[test]
    fn text_layout_walks_list() {
        let mix = mix_of(super::text_layout(2048, 60, 6).unwrap(), 50_000);
        assert!(mix.loads > 0.12, "loads {}", mix.loads);
        assert!(mix.control > 0.15);
    }

    #[test]
    fn annealing_swaps_and_branches() {
        let mix = mix_of(super::annealing(4096, 8, 512, 7).unwrap(), 60_000);
        assert!(mix.control > 0.05, "control {}", mix.control);
        assert!(mix.loads > 0.05, "loads {}", mix.loads);
        assert!(mix.stores > 0.005, "some swaps accepted: {}", mix.stores);
    }

    #[test]
    fn huffman_decode_walks_the_tree() {
        let mix = mix_of(super::huffman_decode(64, 8192, 8).unwrap(), 60_000);
        assert!(mix.loads > 0.15, "tree walking loads: {}", mix.loads);
        assert!(mix.control > 0.15, "per-bit branches: {}", mix.control);
    }

}

/// twolf/vpr-class simulated annealing: propose random cell swaps in a
/// placement array, evaluate a local cost delta against neighbor positions,
/// accept or reject against a temperature threshold (xorshift RNG kept in
/// registers). Data-dependent branches over a medium working set.
pub(crate) fn annealing(cells: u64, sweeps: u64, temp: u64, seed: u64) -> Result<Vm, AsmError> {
    let mask = cells.next_power_of_two() - 1;
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // placement: cell id per slot (u32)
    a.li(S1, DATA2_BASE as i64); // affinity table per cell (u32)
    a.li(S2, cells as i64);
    a.li(S3, sweeps as i64);
    a.li(S4, mask as i64);
    a.li(S5, temp as i64);
    a.li(S6, seed.wrapping_mul(0x2545_f491_4f6c_dd1d) as i64 | 1); // rng state
    let outer = a.label();
    a.bind(outer);
    let (sweep_loop, move_loop, reject, accepted) =
        (a.label(), a.label(), a.label(), a.label());
    a.li(T9, 0); // sweep
    a.bind(sweep_loop);
    a.li(T8, 0); // move
    a.bind(move_loop);
    // xorshift64 for two slot indices.
    a.slli(T0, S6, 13);
    a.xor(S6, S6, T0);
    a.srli(T0, S6, 7);
    a.xor(S6, S6, T0);
    a.slli(T0, S6, 17);
    a.xor(S6, S6, T0);
    a.and(T1, S6, S4); // slot i
    a.srli(T0, S6, 20);
    a.and(T2, T0, S4); // slot j
    // Load the two cells.
    a.slli(T3, T1, 2);
    a.add(T3, S0, T3);
    a.ld4(T4, T3, 0); // cell at i
    a.slli(T5, T2, 2);
    a.add(T5, S0, T5);
    a.ld4(T6, T5, 0); // cell at j
    // Cost delta: affinity[cell_i] vs slot positions (toy HPWL surrogate):
    // delta = (aff_i ^ j) + (aff_j ^ i) - (aff_i ^ i) - (aff_j ^ j), masked.
    a.slli(T7, T4, 2);
    a.add(T7, S1, T7);
    a.ld4(T7, T7, 0); // aff_i
    a.xor(T0, T7, T2);
    a.and(T0, T0, S4); // cost of i at j
    a.xor(T7, T7, T1);
    a.and(T7, T7, S4); // cost of i at i
    a.sub(T0, T0, T7);
    a.slli(T7, T6, 2);
    a.add(T7, S1, T7);
    a.ld4(T7, T7, 0); // aff_j
    a.xor(S7, T7, T1);
    a.and(S7, S7, S4);
    a.xor(T7, T7, T2);
    a.and(T7, T7, S4);
    a.sub(S7, S7, T7);
    a.add(T0, T0, S7); // total delta
    // Accept if delta < temperature (temperature plays the Boltzmann role).
    a.blt(T0, S5, accepted);
    a.jmp(reject);
    a.bind(accepted);
    a.st4(T6, T3, 0);
    a.st4(T4, T5, 0);
    a.bind(reject);
    a.addi(T8, T8, 1);
    a.blt(T8, S2, move_loop);
    // Cool down.
    a.srai(T0, S5, 4);
    a.sub(S5, S5, T0);
    a.addi(T9, T9, 1);
    a.blt(T9, S3, sweep_loop);
    a.li(S5, temp as i64); // reheat for the next pass
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    for i in 0..cells {
        vm.mem_mut().write_le(DATA_BASE + i * 4, 4, i);
    }
    g.fill_u32_below(vm.mem_mut(), DATA2_BASE, cells, mask + 1);
    Ok(vm)
}

/// Variable-length (canonical Huffman) decoding: walk a binary code tree in
/// memory bit by bit over a host-encoded stream — the entropy-decode side
/// of mpeg2/jpeg-class codecs.
pub(crate) fn huffman_decode(symbols: u64, stream_bytes: u64, seed: u64) -> Result<Vm, AsmError> {
    // Host side: build a Huffman tree over a skewed symbol distribution,
    // encode a random message, and lay the tree out in memory
    // (node: left u32 index, right u32 index, symbol u32, is_leaf u32).
    let mut g = DataGen::new(seed);
    let nsym = symbols.clamp(2, 256) as usize;
    // Zipf-ish frequencies.
    let freqs: Vec<u64> = (0..nsym).map(|i| 1_000_000 / (i as u64 + 1) + 1).collect();
    // Build the tree with a simple two-queue method over sorted leaves.
    #[derive(Clone)]
    struct Node {
        left: u32,
        right: u32,
        symbol: u32,
        leaf: bool,
        freq: u64,
    }
    let mut nodes: Vec<Node> = freqs
        .iter()
        .enumerate()
        .map(|(s, &f)| Node { left: 0, right: 0, symbol: s as u32, leaf: true, freq: f })
        .collect();
    let mut heap: Vec<u32> = (0..nsym as u32).collect();
    while heap.len() > 1 {
        heap.sort_by_key(|&i| std::cmp::Reverse(nodes[i as usize].freq));
        let a1 = heap.pop().expect("len > 1");
        let a2 = heap.pop().expect("len > 1");
        let f = nodes[a1 as usize].freq + nodes[a2 as usize].freq;
        nodes.push(Node { left: a1, right: a2, symbol: 0, leaf: false, freq: f });
        heap.push(nodes.len() as u32 - 1);
    }
    let root = heap[0];
    // Codes per symbol.
    let mut codes: Vec<(u64, u32)> = vec![(0, 0); nsym];
    fn assign(nodes: &[Node], n: u32, code: u64, len: u32, codes: &mut [(u64, u32)]) {
        let node = &nodes[n as usize];
        if node.leaf {
            codes[node.symbol as usize] = (code, len.max(1));
        } else {
            assign(nodes, node.left, code << 1, len + 1, codes);
            assign(nodes, node.right, code << 1 | 1, len + 1, codes);
        }
    }
    assign(&nodes, root, 0, 0, &mut codes);
    // Encode a message until the bitstream fills `stream_bytes`.
    let mut bits: Vec<u8> = Vec::new();
    while bits.len() < (stream_bytes * 8) as usize {
        // Sample a symbol proportional to frequency (approximately).
        let mut pick = g.below(freqs.iter().sum::<u64>());
        let mut sym = 0usize;
        for (i, &f) in freqs.iter().enumerate() {
            if pick < f {
                sym = i;
                break;
            }
            pick -= f;
        }
        let (code, len) = codes[sym];
        for b in (0..len).rev() {
            bits.push((code >> b & 1) as u8);
        }
    }
    bits.truncate((stream_bytes * 8) as usize);
    let mut packed = vec![0u8; stream_bytes as usize];
    for (i, &b) in bits.iter().enumerate() {
        packed[i / 8] |= b << (i % 8);
    }

    let mut asm = Asm::new();
    asm.li(S0, DATA_BASE as i64); // tree nodes (16 B each)
    asm.li(S1, DATA2_BASE as i64); // bitstream
    asm.li(S2, DATA3_BASE as i64); // decoded output
    asm.li(S3, (stream_bytes * 8) as i64);
    asm.li(S4, root as i64);
    let outer = asm.label();
    asm.bind(outer);
    let (bit_loop, go_right, step_done, emit) =
        (asm.label(), asm.label(), asm.label(), asm.label());
    asm.li(T0, 0); // bit cursor
    asm.li(T9, 0); // output cursor
    asm.mov(T1, S4); // current node
    asm.bind(bit_loop);
    // Fetch bit T0.
    asm.srli(T2, T0, 3);
    asm.add(T2, S1, T2);
    asm.ld1(T3, T2, 0);
    asm.andi(T4, T0, 7);
    asm.srl(T3, T3, T4);
    asm.andi(T3, T3, 1);
    // Walk.
    asm.slli(T5, T1, 4);
    asm.add(T5, S0, T5);
    asm.bne(T3, ZERO, go_right);
    asm.ld4(T1, T5, 0);
    asm.jmp(step_done);
    asm.bind(go_right);
    asm.ld4(T1, T5, 4);
    asm.bind(step_done);
    // Leaf?
    asm.slli(T5, T1, 4);
    asm.add(T5, S0, T5);
    asm.ld4(T6, T5, 12);
    asm.bne(T6, ZERO, emit);
    asm.addi(T0, T0, 1);
    asm.blt(T0, S3, bit_loop);
    asm.jmp(outer);
    asm.bind(emit);
    asm.ld4(T7, T5, 8); // symbol
    asm.add(T8, S2, T9);
    asm.st1(T7, T8, 0);
    asm.addi(T9, T9, 1);
    asm.andi(T9, T9, 0xffff);
    asm.mov(T1, S4); // back to the root
    asm.addi(T0, T0, 1);
    asm.blt(T0, S3, bit_loop);
    asm.jmp(outer);

    let mut vm = Vm::new(asm.assemble()?);
    for (i, n) in nodes.iter().enumerate() {
        let base = DATA_BASE + i as u64 * 16;
        vm.mem_mut().write_le(base, 4, n.left as u64);
        vm.mem_mut().write_le(base + 4, 4, n.right as u64);
        vm.mem_mut().write_le(base + 8, 4, n.symbol as u64);
        vm.mem_mut().write_le(base + 12, 4, n.leaf as u64);
    }
    vm.mem_mut().write_bytes(DATA2_BASE, &packed);
    Ok(vm)
}

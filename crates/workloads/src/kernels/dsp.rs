//! Signal-processing kernels: FFT, FIR filtering, ADPCM coding, 8x8 DCT,
//! wavelet lifting, and scalar math loops.

use crate::data::{write_twiddles, DataGen};
use crate::{DATA2_BASE, DATA3_BASE, DATA_BASE};
use tinyisa::{regs::*, Asm, AsmError, Vm};

/// Iterative radix-2 complex FFT over `1 << log2n` points
/// (decimation-in-frequency: butterfly stages with a precomputed twiddle
/// table, then the bit-reversal permutation).
/// Models MiBench FFT/fftinv, SPEC lucas' transform phase, facerec.
pub(crate) fn fft(log2n: u32, seed: u64) -> Result<Vm, AsmError> {
    let n = 1u64 << log2n;
    let mut a = Asm::new();
    // S0 data, S1 twiddles, S2 n, S3 log2n, S4 m, S5 half, S6 tstep.
    a.li(S0, DATA_BASE as i64);
    a.li(S1, DATA2_BASE as i64);
    a.li(S2, n as i64);
    a.li(S3, log2n as i64);
    let outer = a.label();
    a.bind(outer);

    // --- butterfly stages ---
    let (stage_loop, k_loop, j_loop) = (a.label(), a.label(), a.label());
    a.li(S4, 2); // m
    a.bind(stage_loop);
    a.srli(S5, S4, 1); // half
    a.div(S6, S2, S4); // twiddle stride
    a.li(T0, 0); // k
    a.bind(k_loop);
    a.li(T1, 0); // j
    a.bind(j_loop);
    a.mul(T2, T1, S6);
    a.slli(T2, T2, 4);
    a.add(T2, S1, T2);
    a.ldf(F0, T2, 0); // wr
    a.ldf(F1, T2, 8); // wi
    a.add(T3, T0, T1);
    a.slli(T4, T3, 4);
    a.add(T4, S0, T4); // addr of a[k+j]
    a.add(T5, T3, S5);
    a.slli(T5, T5, 4);
    a.add(T5, S0, T5); // addr of a[k+j+half]
    a.ldf(F2, T5, 0);
    a.ldf(F3, T5, 8);
    // t = w * b (complex)
    a.fmul(F4, F0, F2);
    a.fmul(F5, F1, F3);
    a.fsub(F4, F4, F5); // tr
    a.fmul(F5, F0, F3);
    a.fmul(F6, F1, F2);
    a.fadd(F5, F5, F6); // ti
    a.ldf(F6, T4, 0);
    a.ldf(F7, T4, 8);
    a.fadd(F8, F6, F4);
    a.fadd(F9, F7, F5);
    a.stf(F8, T4, 0);
    a.stf(F9, T4, 8);
    a.fsub(F8, F6, F4);
    a.fsub(F9, F7, F5);
    a.stf(F8, T5, 0);
    a.stf(F9, T5, 8);
    a.addi(T1, T1, 1);
    a.blt(T1, S5, j_loop);
    a.add(T0, T0, S4);
    a.blt(T0, S2, k_loop);
    a.slli(S4, S4, 1);
    a.bge(S2, S4, stage_loop);
    // --- bit-reversal permutation ---
    let (br_loop, rev_loop, no_swap) = (a.label(), a.label(), a.label());
    a.li(T0, 0); // i
    a.bind(br_loop);
    a.li(T1, 0); // r
    a.li(T2, 0); // b
    a.bind(rev_loop);
    a.srl(T3, T0, T2);
    a.andi(T3, T3, 1);
    a.slli(T1, T1, 1);
    a.or(T1, T1, T3);
    a.addi(T2, T2, 1);
    a.blt(T2, S3, rev_loop);
    a.bge(T0, T1, no_swap);
    a.slli(T4, T0, 4);
    a.add(T4, S0, T4);
    a.slli(T5, T1, 4);
    a.add(T5, S0, T5);
    a.ldf(F0, T4, 0);
    a.ldf(F1, T4, 8);
    a.ldf(F2, T5, 0);
    a.ldf(F3, T5, 8);
    a.stf(F2, T4, 0);
    a.stf(F3, T4, 8);
    a.stf(F0, T5, 0);
    a.stf(F1, T5, 8);
    a.bind(no_swap);
    a.addi(T0, T0, 1);
    a.blt(T0, S2, br_loop);

    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_f64(vm.mem_mut(), DATA_BASE, 2 * n);
    write_twiddles(vm.mem_mut(), DATA2_BASE, n);
    Ok(vm)
}

/// FIR filter: `y[i] = sum_t h[t] * x[i - t]` over `samples` doubles with
/// `taps` coefficients. Models MiBench mad's synthesis filter, rsynth's
/// formant filters, and lame's filterbank.
pub(crate) fn fir(taps: u64, samples: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // x
    a.li(S1, DATA2_BASE as i64); // h
    a.li(S2, DATA3_BASE as i64); // y
    a.li(S3, samples as i64);
    a.li(S4, taps as i64);
    let outer = a.label();
    a.bind(outer);
    let (i_loop, t_loop) = (a.label(), a.label());
    a.li(T0, taps as i64); // i starts at taps so x[i-t] stays in range
    a.bind(i_loop);
    a.fli(F0, 0.0); // acc
    a.li(T1, 0); // t
    a.bind(t_loop);
    a.sub(T2, T0, T1);
    a.slli(T2, T2, 3);
    a.add(T2, S0, T2);
    a.ldf(F1, T2, 0); // x[i-t]
    a.slli(T3, T1, 3);
    a.add(T3, S1, T3);
    a.ldf(F2, T3, 0); // h[t]
    a.fmul(F1, F1, F2);
    a.fadd(F0, F0, F1);
    a.addi(T1, T1, 1);
    a.blt(T1, S4, t_loop);
    a.slli(T4, T0, 3);
    a.add(T4, S2, T4);
    a.stf(F0, T4, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, i_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_f64(vm.mem_mut(), DATA_BASE, samples);
    g.fill_f64(vm.mem_mut(), DATA2_BASE, taps);
    Ok(vm)
}

/// IMA-style ADPCM coding over 16-bit samples: per-sample quantization with
/// step-size adaptation through lookup tables and data-dependent branches.
/// Models MiBench adpcm and MediaBench g721. `decode` flips the
/// reconstruct-vs-quantize ordering (same tables, slightly different branch
/// mix, like rawcaudio vs rawdaudio).
pub(crate) fn adpcm(samples: u64, decode: bool, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // input samples (i16)
    a.li(S1, DATA2_BASE as i64); // step table (89 x i64)
    a.li(S2, DATA3_BASE as i64); // output
    a.li(S3, samples as i64);
    a.li(S4, 0); // valpred
    a.li(S5, 0); // index
    let outer = a.label();
    a.bind(outer);
    let i_loop = a.label();
    a.li(T0, 0);
    a.bind(i_loop);
    // Load sample (sign-extend 16-bit by shifting).
    a.slli(T1, T0, 1);
    a.add(T1, S0, T1);
    a.ld2(T2, T1, 0);
    a.slli(T2, T2, 48);
    a.srai(T2, T2, 48);
    // step = steptable[index]
    a.slli(T3, S5, 3);
    a.add(T3, S1, T3);
    a.ld8(T4, T3, 0); // step
    // diff = sample - valpred ; sign handling
    let (pos, signdone) = (a.label(), a.label());
    a.sub(T5, T2, S4);
    a.li(T6, 0); // sign bit
    a.bge(T5, ZERO, pos);
    a.sub(T5, ZERO, T5);
    a.li(T6, 8);
    a.bind(pos);
    // Intentional jump-to-fallthrough (mica-lint warns): the positive arm's
    // merge jump, kept for the characterized control mix.
    a.jmp(signdone);
    a.bind(signdone);
    // Quantize: delta = 0; 3 data-dependent comparisons against step.
    let (skip1, skip2, skip3) = (a.label(), a.label(), a.label());
    a.li(T7, 0); // delta
    a.blt(T5, T4, skip1);
    a.ori(T7, T7, 4);
    a.sub(T5, T5, T4);
    a.bind(skip1);
    a.srai(T4, T4, 1);
    a.blt(T5, T4, skip2);
    a.ori(T7, T7, 2);
    a.sub(T5, T5, T4);
    a.bind(skip2);
    a.srai(T4, T4, 1);
    a.blt(T5, T4, skip3);
    a.ori(T7, T7, 1);
    a.bind(skip3);
    a.or(T7, T7, T6); // add sign bit
    // Reconstruct valpred (decode path recomputes from delta; encode path
    // shares the same arithmetic — like the reference codec).
    a.slli(T8, S5, 3);
    a.add(T8, S1, T8);
    a.ld8(T4, T8, 0); // reload step
    // vpdiff = step >> 3 + contributions
    let (nod4, nod2, nod1, possum) = (a.label(), a.label(), a.label(), a.label());
    a.srai(T9, T4, 3);
    a.andi(T1, T7, 4);
    a.beq(T1, ZERO, nod4);
    a.add(T9, T9, T4);
    a.bind(nod4);
    a.andi(T1, T7, 2);
    a.beq(T1, ZERO, nod2);
    a.srai(T2, T4, 1);
    a.add(T9, T9, T2);
    a.bind(nod2);
    a.andi(T1, T7, 1);
    a.beq(T1, ZERO, nod1);
    a.srai(T2, T4, 2);
    a.add(T9, T9, T2);
    a.bind(nod1);
    a.andi(T1, T7, 8);
    a.beq(T1, ZERO, possum);
    a.sub(T9, ZERO, T9);
    a.bind(possum);
    a.add(S4, S4, T9);
    // Clamp valpred to 16-bit range.
    let (no_hi, no_lo) = (a.label(), a.label());
    a.li(T1, 32767);
    a.blt(S4, T1, no_hi);
    a.mov(S4, T1);
    a.bind(no_hi);
    a.li(T1, -32768);
    a.bge(S4, T1, no_lo);
    a.mov(S4, T1);
    a.bind(no_lo);
    // index += indexTable[delta & 7] (inline table via arithmetic:
    // {-1,-1,-1,-1,2,4,6,8}), clamp to [0, 88].
    let (small, idxdone, no_ilo, no_ihi) = (a.label(), a.label(), a.label(), a.label());
    a.andi(T1, T7, 7);
    a.slti(T2, T1, 4);
    a.bne(T2, ZERO, small);
    a.addi(T2, T1, -3);
    a.slli(T2, T2, 1);
    a.add(S5, S5, T2);
    a.jmp(idxdone);
    a.bind(small);
    a.addi(S5, S5, -1);
    a.bind(idxdone);
    a.bge(S5, ZERO, no_ilo);
    a.li(S5, 0);
    a.bind(no_ilo);
    a.li(T2, 88);
    a.bge(T2, S5, no_ihi);
    a.li(S5, 88);
    a.bind(no_ihi);
    // Emit: encode stores the 4-bit code, decode stores the sample.
    a.slli(T1, T0, if decode { 1 } else { 0 } as u8);
    a.add(T1, S2, T1);
    if decode {
        a.st2(S4, T1, 0);
    } else {
        a.st1(T7, T1, 0);
    }
    a.addi(T0, T0, 1);
    a.blt(T0, S3, i_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_audio(vm.mem_mut(), DATA_BASE, samples);
    // IMA step table (89 entries).
    let mut step = 7f64;
    for i in 0..89u64 {
        vm.mem_mut().write_le(DATA2_BASE + i * 8, 8, step as u64);
        step *= 1.1;
    }
    Ok(vm)
}

/// 8x8 block DCT with quantization over a grayscale image: the compute core
/// of JPEG/MPEG-style codecs (CommBench jpeg, MiBench jpeg, MediaBench
/// mpeg2/epic pipelines). `quality` scales the quantizer.
pub(crate) fn dct8x8(blocks: u64, quality: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // input bytes
    a.li(S1, DATA2_BASE as i64); // 8x8 DCT coefficient table (f64)
    a.li(S2, DATA3_BASE as i64); // output (i16)
    a.li(S3, blocks as i64);
    a.li(S6, (DATA2_BASE + 64 * 8) as i64); // scratch 8x8 (f64)
    a.fli(F15, quality.max(1) as f64);
    let outer = a.label();
    a.bind(outer);
    let b_loop = a.label();
    a.li(S4, 0); // block index
    a.bind(b_loop);
    a.slli(S5, S4, 6);
    a.add(S5, S0, S5); // block base (64 bytes)

    // Pass 1: rows. scratch[u][x] = sum_y c[u][y] * in[y][x]
    let (u1, x1, y1) = (a.label(), a.label(), a.label());
    a.li(T0, 0); // u
    a.bind(u1);
    a.li(T1, 0); // x
    a.bind(x1);
    a.fli(F0, 0.0);
    a.li(T2, 0); // y
    a.bind(y1);
    a.slli(T3, T0, 3);
    a.add(T3, T3, T2);
    a.slli(T3, T3, 3);
    a.add(T3, S1, T3);
    a.ldf(F1, T3, 0); // c[u][y]
    a.slli(T4, T2, 3);
    a.add(T4, T4, T1);
    a.add(T4, S5, T4);
    a.ld1(T5, T4, 0); // in[y][x]
    a.fcvtif(F2, T5);
    a.fmul(F1, F1, F2);
    a.fadd(F0, F0, F1);
    a.addi(T2, T2, 1);
    a.slti(T6, T2, 8);
    a.bne(T6, ZERO, y1);
    a.slli(T3, T0, 3);
    a.add(T3, T3, T1);
    a.slli(T3, T3, 3);
    a.add(T3, S6, T3);
    a.stf(F0, T3, 0);
    a.addi(T1, T1, 1);
    a.slti(T6, T1, 8);
    a.bne(T6, ZERO, x1);
    a.addi(T0, T0, 1);
    a.slti(T6, T0, 8);
    a.bne(T6, ZERO, u1);

    // Pass 2: columns + quantize. out[u][v] = round(sum_x scratch[u][x] *
    // c[v][x] / q)
    let (u2, v2, x2) = (a.label(), a.label(), a.label());
    a.li(T0, 0); // u
    a.bind(u2);
    a.li(T1, 0); // v
    a.bind(v2);
    a.fli(F0, 0.0);
    a.li(T2, 0); // x
    a.bind(x2);
    a.slli(T3, T0, 3);
    a.add(T3, T3, T2);
    a.slli(T3, T3, 3);
    a.add(T3, S6, T3);
    a.ldf(F1, T3, 0);
    a.slli(T4, T1, 3);
    a.add(T4, T4, T2);
    a.slli(T4, T4, 3);
    a.add(T4, S1, T4);
    a.ldf(F2, T4, 0);
    a.fmul(F1, F1, F2);
    a.fadd(F0, F0, F1);
    a.addi(T2, T2, 1);
    a.slti(T6, T2, 8);
    a.bne(T6, ZERO, x2);
    a.fdiv(F0, F0, F15);
    a.fcvtfi(T5, F0);
    a.slli(T3, T0, 3);
    a.add(T3, T3, T1);
    a.slli(T3, T3, 1);
    a.slli(T4, S4, 7);
    a.add(T3, T3, T4);
    a.add(T3, S2, T3);
    a.st2(T5, T3, 0);
    a.addi(T1, T1, 1);
    a.slti(T6, T1, 8);
    a.bne(T6, ZERO, v2);
    a.addi(T0, T0, 1);
    a.slti(T6, T0, 8);
    a.bne(T6, ZERO, u2);

    a.addi(S4, S4, 1);
    a.blt(S4, S3, b_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_image(vm.mem_mut(), DATA_BASE, 64, blocks.max(1));
    // DCT-II coefficient table c[u][y].
    for u in 0..8u64 {
        for y in 0..8u64 {
            let c = if u == 0 { (1.0f64 / 8.0).sqrt() } else { 0.5 }
                * ((2.0 * y as f64 + 1.0) * u as f64 * std::f64::consts::PI / 16.0).cos();
            vm.mem_mut().write_f64(DATA2_BASE + (u * 8 + y) * 8, c);
        }
    }
    Ok(vm)
}

/// One-dimensional Haar-style lifting wavelet over an integer signal,
/// `levels` octaves, optionally inverse. Models MediaBench epic/unepic.
pub(crate) fn wavelet(len: u64, levels: u64, inverse: bool, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // signal (i64)
    if !inverse {
        a.li(S1, DATA2_BASE as i64); // detail output (forward only)
    }
    a.li(S2, len as i64);
    a.li(S3, levels.max(1) as i64);
    let outer = a.label();
    a.bind(outer);
    let (lvl_loop, i_loop, lvl_end) = (a.label(), a.label(), a.label());
    a.li(T8, 0); // level
    a.mov(T9, S2); // current length
    a.bind(lvl_loop);
    a.srli(T7, T9, 1); // half
    a.beq(T7, ZERO, lvl_end);
    a.li(T0, 0); // i
    a.bind(i_loop);
    a.slli(T1, T0, 4); // 2i * 8
    a.add(T1, S0, T1);
    a.ld8(T2, T1, 0); // x[2i]
    a.ld8(T3, T1, 8); // x[2i+1]
    if inverse {
        // Reconstruct pair from average + detail.
        a.add(T4, T2, T3); // a + d
        a.sub(T5, T2, T3); // a - d
        a.st8(T4, T1, 0);
        a.st8(T5, T1, 8);
    } else {
        a.add(T4, T2, T3);
        a.srai(T4, T4, 1); // average
        a.sub(T5, T2, T3); // detail
        a.slli(T6, T0, 3);
        a.add(T6, S0, T6);
        a.st8(T4, T6, 0); // pack averages at the front
        a.slli(T6, T0, 3);
        a.add(T6, S1, T6);
        a.st8(T5, T6, 0); // details to the side band
    }
    a.addi(T0, T0, 1);
    a.blt(T0, T7, i_loop);
    a.mov(T9, T7);
    a.addi(T8, T8, 1);
    a.blt(T8, S3, lvl_loop);
    a.bind(lvl_end);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_u64_below(vm.mem_mut(), DATA_BASE, len, 4096);
    Ok(vm)
}

/// Scalar math loops: Newton square roots, cubic polynomial evaluation and
/// integer GCDs — MiBench basicmath.
pub(crate) fn basicmath(values: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // f64 inputs
    a.li(S1, DATA2_BASE as i64); // u64 pairs for gcd
    a.li(S2, values as i64);
    let outer = a.label();
    a.bind(outer);
    let i_loop = a.label();
    a.li(T0, 0);
    a.bind(i_loop);
    a.slli(T1, T0, 3);
    a.add(T1, S0, T1);
    a.ldf(F0, T1, 0);
    a.fabs(F0, F0);
    // Newton iteration for sqrt: 6 fixed rounds.
    a.fli(F1, 1.0);
    for _ in 0..6 {
        a.fdiv(F2, F0, F1);
        a.fadd(F1, F1, F2);
        a.fli(F3, 0.5);
        a.fmul(F1, F1, F3);
    }
    // Cubic evaluation p(x) = ((x + 1)x + 2)x + 3 at x = sqrt result.
    a.fli(F4, 1.0);
    a.fadd(F4, F1, F4);
    a.fmul(F4, F4, F1);
    a.fli(F5, 2.0);
    a.fadd(F4, F4, F5);
    a.fmul(F4, F4, F1);
    a.fli(F5, 3.0);
    a.fadd(F4, F4, F5);
    a.stf(F4, T1, 0);
    // Integer GCD of a data pair (Euclid with remainder).
    a.slli(T2, T0, 4);
    a.add(T2, S1, T2);
    a.ld8(T3, T2, 0);
    a.ld8(T4, T2, 8);
    let (gcd_loop, gcd_done) = (a.label(), a.label());
    a.bind(gcd_loop);
    a.beq(T4, ZERO, gcd_done);
    a.rem(T5, T3, T4);
    a.mov(T3, T4);
    a.mov(T4, T5);
    a.jmp(gcd_loop);
    a.bind(gcd_done);
    a.st8(T3, T2, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S2, i_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_f64(vm.mem_mut(), DATA_BASE, values);
    g.fill_u64_below(vm.mem_mut(), DATA2_BASE, values * 2, 1 << 30);
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use crate::kernels::test_support::{mix_of, run_fuel};

    #[test]
    fn fft_runs_and_is_fp_heavy() {
        let vm = super::fft(8, 1).unwrap();
        let mix = mix_of(vm, 60_000);
        assert!(mix.fp > 0.15, "fp fraction {}", mix.fp);
        assert!(mix.loads > 0.1);
    }

    #[test]
    fn fir_runs_with_unit_stride_loads() {
        let vm = super::fir(32, 2048, 2).unwrap();
        let mix = mix_of(vm, 50_000);
        assert!(mix.fp > 0.15);
        assert!(mix.loads > 0.15, "loads {}", mix.loads);
    }

    #[test]
    fn adpcm_is_branchy_integer_code() {
        let vm = super::adpcm(4096, false, 3).unwrap();
        let mix = mix_of(vm, 50_000);
        assert!(mix.control > 0.15, "control {}", mix.control);
        assert!(mix.fp == 0.0);
    }

    #[test]
    fn adpcm_decode_variant_differs() {
        let enc = mix_of(super::adpcm(4096, false, 3).unwrap(), 50_000);
        let dec = mix_of(super::adpcm(4096, true, 3).unwrap(), 50_000);
        assert!((enc.stores - dec.stores).abs() < 0.05, "same order of stores");
    }

    #[test]
    fn dct_runs_and_mixes_fp_and_int() {
        let vm = super::dct8x8(16, 8, 4).unwrap();
        let mix = mix_of(vm, 80_000);
        assert!(mix.fp > 0.1, "fp {}", mix.fp);
    }

    #[test]
    fn wavelet_forward_and_inverse_run() {
        run_fuel(super::wavelet(4096, 6, false, 5).unwrap(), 30_000);
        run_fuel(super::wavelet(4096, 6, true, 5).unwrap(), 30_000);
    }

    #[test]
    fn basicmath_has_divides() {
        let vm = super::basicmath(512, 6).unwrap();
        let mix = mix_of(vm, 40_000);
        assert!(mix.int_mul > 0.001, "rem/div present: {}", mix.int_mul);
        assert!(mix.fp > 0.2);
    }

    #[test]
    fn mdct_is_a_dense_fp_dot_product() {
        let mix = mix_of(super::mdct(8, 64, 7).unwrap(), 60_000);
        assert!(mix.fp > 0.15, "fp {}", mix.fp);
        assert!(mix.loads > 0.15, "loads {}", mix.loads);
    }

}

/// Windowed MDCT: for each output bin, a long dot product against a
/// precomputed cosine basis over 50%-overlapped frames — the filterbank
/// core of perceptual audio coders (MiBench lame).
pub(crate) fn mdct(frames: u64, block: u64, seed: u64) -> Result<Vm, AsmError> {
    let half = block / 2;
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // samples (f64)
    a.li(S1, DATA2_BASE as i64); // cos basis (half x block, f64)
    a.li(S2, DATA3_BASE as i64); // spectral output
    a.li(S3, frames as i64);
    a.li(S4, block as i64);
    a.li(S5, half as i64);
    let outer = a.label();
    a.bind(outer);
    let (f_loop, k_loop, n_loop) = (a.label(), a.label(), a.label());
    a.li(T0, 0); // frame
    a.bind(f_loop);
    a.mul(T1, T0, S5); // frame advance = half (overlap)
    a.slli(T1, T1, 3);
    a.add(T1, S0, T1); // frame base
    a.li(T2, 0); // k
    a.bind(k_loop);
    a.fli(F0, 0.0);
    a.mul(T3, T2, S4);
    a.slli(T3, T3, 3);
    a.add(T3, S1, T3); // basis row
    a.li(T4, 0); // n
    a.bind(n_loop);
    a.slli(T5, T4, 3);
    a.add(T6, T1, T5);
    a.ldf(F1, T6, 0); // x[n]
    a.add(T6, T3, T5);
    a.ldf(F2, T6, 0); // c[k][n]
    a.fmul(F1, F1, F2);
    a.fadd(F0, F0, F1);
    a.addi(T4, T4, 1);
    a.blt(T4, S4, n_loop);
    a.mul(T7, T0, S5);
    a.add(T7, T7, T2);
    a.slli(T7, T7, 3);
    a.add(T7, S2, T7);
    a.stf(F0, T7, 0);
    a.addi(T2, T2, 1);
    a.blt(T2, S5, k_loop);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, f_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_f64(vm.mem_mut(), DATA_BASE, (frames + 1) * half);
    for k in 0..half {
        for n in 0..block {
            let c = ((std::f64::consts::PI / block as f64)
                * (n as f64 + 0.5 + half as f64 / 2.0)
                * (k as f64 + 0.5))
                .cos();
            vm.mem_mut().write_f64(DATA2_BASE + (k * block + n) * 8, c);
        }
    }
    Ok(vm)
}

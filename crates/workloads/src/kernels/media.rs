//! Media kernels: software triangle rasterization, image filters
//! (smooth/edges/median/dither/convert), and block motion estimation.

use crate::data::DataGen;
use crate::{DATA2_BASE, DATA3_BASE, DATA_BASE};
use tinyisa::{regs::*, Asm, AsmError, Vm};

/// Which image filter the `ImageFilter` kernel applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterKind {
    /// 3x3 box blur (susan smoothing, tiff resampling).
    Smooth,
    /// Gradient magnitude + threshold (susan edges).
    Edges,
    /// 3x3 median via insertion sort (tiff median).
    Median,
    /// Serial error-diffusion dithering (tiff dither).
    Dither,
    /// USAN corner detection: count similar pixels in a 5x5 window and
    /// threshold (susan corners).
    Corners,
    /// Per-pixel format conversion with gamma table (tiff 2bw/2rgba).
    Convert,
}

/// mesa/ghostscript-class scanline rasterizer: per triangle, bounding box +
/// three integer edge functions per pixel; covered pixels optionally sample
/// a texture before the framebuffer store.
pub(crate) fn raster(size: u64, tris: u64, textured: bool, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // vertex buffer: 6 x i32 per triangle
    a.li(S1, DATA2_BASE as i64); // framebuffer (size x size bytes)
    if textured {
        a.li(S2, DATA3_BASE as i64); // texture (256 x 256 bytes)
    }
    a.li(S3, tris as i64);
    a.li(S4, size as i64);
    let outer = a.label();
    a.bind(outer);
    let (t_loop, y_loop, x_loop, skip_pixel) = (a.label(), a.label(), a.label(), a.label());
    a.li(S5, 0); // triangle index
    a.bind(t_loop);
    // Load the three vertices.
    a.li(T0, 24);
    a.mul(T0, S5, T0);
    a.add(T0, S0, T0);
    a.ld4(S6, T0, 0); // x0
    a.ld4(S7, T0, 4); // y0
    a.ld4(S8, T0, 8); // x1
    a.ld4(S9, T0, 12); // y1
    a.ld4(S10, T0, 16); // x2
    a.ld4(S11, T0, 20); // y2
    // Bounding box: iterate the full row span between min/max y, min/max x
    // computed with compare/branch chains.
    let (ymin_b, ymax_b, xmin_b, xmax_b) = (a.label(), a.label(), a.label(), a.label());
    a.mov(T1, S7);
    a.bge(S9, T1, ymin_b);
    a.mov(T1, S9);
    a.bind(ymin_b);
    a.bge(S11, T1, ymax_b);
    a.mov(T1, S11);
    a.bind(ymax_b); // T1 = ymin
    a.mov(T2, S7);
    a.bge(T2, S9, xmin_b);
    a.mov(T2, S9);
    a.bind(xmin_b);
    a.bge(T2, S11, xmax_b);
    a.mov(T2, S11);
    a.bind(xmax_b); // T2 = ymax
    a.mov(T9, T1); // y
    a.bind(y_loop);
    a.li(T0, 0); // x (scan the full width: simple but realistic fill loop)
    a.bind(x_loop);
    // Edge functions: e01 = (x1-x0)(y-y0) - (y1-y0)(x-x0), etc.
    let edge = |a: &mut Asm, x0: tinyisa::Reg, y0: tinyisa::Reg, x1: tinyisa::Reg, y1: tinyisa::Reg| {
        a.sub(T3, x1, x0);
        a.sub(T4, T9, y0);
        a.mul(T3, T3, T4);
        a.sub(T4, y1, y0);
        a.sub(T5, T0, x0);
        a.mul(T4, T4, T5);
        a.sub(T3, T3, T4); // edge value
    };
    edge(&mut a, S6, S7, S8, S9);
    a.blt(T3, ZERO, skip_pixel);
    edge(&mut a, S8, S9, S10, S11);
    a.blt(T3, ZERO, skip_pixel);
    edge(&mut a, S10, S11, S6, S7);
    a.blt(T3, ZERO, skip_pixel);
    // Covered: shade.
    if textured {
        a.andi(T6, T0, 255);
        a.andi(T7, T9, 255);
        a.slli(T7, T7, 8);
        a.add(T6, T6, T7);
        a.add(T6, S2, T6);
        a.ld1(T8, T6, 0);
    } else {
        a.addi(T8, S5, 1);
        a.andi(T8, T8, 255);
    }
    a.mul(T6, T9, S4);
    a.add(T6, T6, T0);
    a.add(T6, S1, T6);
    a.st1(T8, T6, 0);
    a.bind(skip_pixel);
    a.addi(T0, T0, 1);
    a.blt(T0, S4, x_loop);
    a.addi(T9, T9, 1);
    a.bge(T2, T9, y_loop);
    a.addi(S5, S5, 1);
    a.blt(S5, S3, t_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    for t in 0..tris {
        // Counter-clockwise-ish triangles inside the viewport.
        let base = DATA_BASE + t * 24;
        let cx = g.below(size - 16) + 8;
        let cy = g.below(size - 16) + 8;
        let r = g.below(12) + 3;
        let pts =
            [(cx, cy.saturating_sub(r)), (cx.saturating_sub(r), cy + r), (cx + r, cy + r)];
        for (i, (x, y)) in pts.iter().enumerate() {
            vm.mem_mut().write_le(base + i as u64 * 8, 4, *x);
            vm.mem_mut().write_le(base + i as u64 * 8 + 4, 4, *y);
        }
    }
    g.fill_image(vm.mem_mut(), DATA3_BASE, 256, 256);
    Ok(vm)
}

/// susan/tiff-class image filtering over a `w x h` grayscale image.
pub(crate) fn image_filter(w: u64, h: u64, kind: FilterKind, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // input image
    a.li(S1, DATA2_BASE as i64); // output image
    a.li(S2, w as i64);
    a.li(S3, h as i64);
    if matches!(kind, FilterKind::Median | FilterKind::Dither | FilterKind::Convert) {
        a.li(S4, DATA3_BASE as i64); // lookup table / error row
    }
    let outer = a.label();
    a.bind(outer);
    let (y_loop, x_loop) = (a.label(), a.label());
    a.li(T9, 1); // y
    a.bind(y_loop);
    a.mul(T8, T9, S2);
    a.add(T8, S0, T8); // row base
    a.li(T0, 1); // x
    a.bind(x_loop);
    a.add(T1, T8, T0); // &in[y][x]
    let row = w as i64;
    match kind {
        FilterKind::Smooth => {
            // Sum the 3x3 neighborhood, divide by 9.
            a.li(T2, 0);
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    a.ld1(T3, T1, dy * row + dx);
                    a.add(T2, T2, T3);
                }
            }
            a.li(T4, 9);
            a.div(T2, T2, T4);
        }
        FilterKind::Edges => {
            // |gx| + |gy| with Sobel-ish weights, then threshold.
            a.ld1(T2, T1, -1);
            a.ld1(T3, T1, 1);
            a.sub(T2, T3, T2); // gx
            a.ld1(T3, T1, -row);
            a.ld1(T4, T1, row);
            a.sub(T3, T4, T3); // gy
            let (ax, ay, thr) = (a.label(), a.label(), a.label());
            a.bge(T2, ZERO, ax);
            a.sub(T2, ZERO, T2);
            a.bind(ax);
            a.bge(T3, ZERO, ay);
            a.sub(T3, ZERO, T3);
            a.bind(ay);
            a.add(T2, T2, T3);
            a.slti(T4, T2, 40);
            a.beq(T4, ZERO, thr);
            a.li(T2, 0);
            a.bind(thr);
        }
        FilterKind::Median => {
            // Copy 9 neighbors to scratch, insertion sort, take element 4.
            let mut idx = 0i64;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    a.ld1(T3, T1, dy * row + dx);
                    a.st1(T3, S4, idx);
                    idx += 1;
                }
            }
            let (si, sj, noswap, sj_end) = (a.label(), a.label(), a.label(), a.label());
            a.li(T2, 1); // i
            a.bind(si);
            a.li(T3, 0); // j
            a.bind(sj);
            a.bge(T3, T2, sj_end);
            a.add(T4, S4, T3);
            a.ld1(T5, T4, 0);
            a.add(T6, S4, T2);
            a.ld1(T7, T6, 0);
            a.bge(T7, T5, noswap);
            a.st1(T7, T4, 0);
            a.st1(T5, T6, 0);
            a.bind(noswap);
            a.addi(T3, T3, 1);
            a.jmp(sj);
            a.bind(sj_end);
            a.addi(T2, T2, 1);
            a.slti(T4, T2, 9);
            a.bne(T4, ZERO, si);
            a.ld1(T2, S4, 4);
        }
        FilterKind::Dither => {
            // 1-D error diffusion: out = (in + err >= 128) ? 255 : 0;
            // err = in + err - out, carried in a register via memory row.
            a.add(T4, S4, T0);
            a.ld1(T5, T4, 0); // err[x]
            a.ld1(T2, T1, 0);
            a.add(T2, T2, T5);
            let (white, done) = (a.label(), a.label());
            a.slti(T6, T2, 128);
            a.beq(T6, ZERO, white);
            a.st1(T2, T4, 1); // push error right
            a.li(T2, 0);
            a.jmp(done);
            a.bind(white);
            a.addi(T7, T2, -255);
            a.st1(T7, T4, 1);
            a.li(T2, 255);
            a.bind(done);
        }
        FilterKind::Corners => {
            // USAN: count 5x5 neighbors within +/- 20 of the nucleus.
            a.ld1(T2, T1, 0); // nucleus
            a.li(T3, 0); // similar count
            for dy in -2i64..=2 {
                for dx in -2i64..=2 {
                    if dy == 0 && dx == 0 {
                        continue;
                    }
                    let not_similar = a.label();
                    a.ld1(T4, T1, dy * row + dx);
                    a.sub(T4, T4, T2);
                    let non_neg = a.label();
                    a.bge(T4, ZERO, non_neg);
                    a.sub(T4, ZERO, T4);
                    a.bind(non_neg);
                    a.slti(T5, T4, 20);
                    a.beq(T5, ZERO, not_similar);
                    a.addi(T3, T3, 1);
                    a.bind(not_similar);
                }
            }
            // Corner response: strong when few neighbors are similar.
            let (corner, resp_done) = (a.label(), a.label());
            a.slti(T5, T3, 9); // geometric threshold ~3g/4 of 24
            a.bne(T5, ZERO, corner);
            a.li(T2, 0);
            a.jmp(resp_done);
            a.bind(corner);
            a.li(T4, 24);
            a.sub(T2, T4, T3);
            a.slli(T2, T2, 3);
            a.bind(resp_done);
        }
        FilterKind::Convert => {
            // Gamma-table lookup + channel replication arithmetic.
            a.ld1(T2, T1, 0);
            a.add(T3, S4, T2);
            a.ld1(T2, T3, 0);
            a.slli(T4, T2, 1);
            a.add(T4, T4, T2);
            a.srli(T2, T4, 2); // (3v)/4 luminance-ish
        }
    }
    // Store result.
    a.mul(T5, T9, S2);
    a.add(T5, T5, T0);
    a.add(T5, S1, T5);
    a.st1(T2, T5, 0);
    a.addi(T0, T0, 1);
    a.addi(T6, S2, -1);
    a.blt(T0, T6, x_loop);
    a.addi(T9, T9, 1);
    a.addi(T6, S3, -1);
    a.blt(T9, T6, y_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_image(vm.mem_mut(), DATA_BASE, w, h);
    // Gamma table for Convert.
    for i in 0..256u64 {
        let v = (255.0 * (i as f64 / 255.0).powf(0.45)) as u8;
        vm.mem_mut().write_u8(DATA3_BASE + i, v);
    }
    Ok(vm)
}

/// mpeg2-encode-class block motion estimation: for each 8x8 block, compute
/// the SAD against a +/- `range` search window in the reference frame and
/// keep the minimum.
pub(crate) fn motion_est(w: u64, h: u64, range: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // current frame
    a.li(S1, DATA2_BASE as i64); // reference frame
    a.li(S2, DATA3_BASE as i64); // best-SAD output per block (u32)
    a.li(S3, (w / 8 - 1) as i64); // blocks per row (avoid edges)
    a.li(S4, (h / 8 - 1) as i64);
    a.li(S5, w as i64);
    a.li(S6, range as i64);
    let outer = a.label();
    a.bind(outer);
    let (by_l, bx_l, dy_l, dx_l, py_l, px_l, keep, neg) = (
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
    );
    a.li(S7, 1); // block y
    a.bind(by_l);
    a.li(S8, 1); // block x
    a.bind(bx_l);
    a.li(S9, 0x7fff_ffff); // best SAD
    a.sub(T9, ZERO, S6); // dy = -range
    a.bind(dy_l);
    a.sub(S10, ZERO, S6); // dx = -range
    a.bind(dx_l);
    // SAD over the 8x8 block.
    a.li(S11, 0); // sad
    a.li(T0, 0); // py
    a.bind(py_l);
    a.li(T1, 0); // px
    a.bind(px_l);
    // cur[(by*8+py)*w + bx*8+px]
    a.slli(T2, S7, 3);
    a.add(T2, T2, T0);
    a.mul(T2, T2, S5);
    a.slli(T3, S8, 3);
    a.add(T2, T2, T3);
    a.add(T2, T2, T1);
    a.add(T3, S0, T2);
    a.ld1(T4, T3, 0);
    // ref[... + dy*w + dx]
    a.mul(T5, T9, S5);
    a.add(T5, T5, S10);
    a.add(T5, T5, T2);
    a.add(T5, S1, T5);
    a.ld1(T6, T5, 0);
    a.sub(T7, T4, T6);
    a.bge(T7, ZERO, neg);
    a.sub(T7, ZERO, T7);
    a.bind(neg);
    a.add(S11, S11, T7);
    a.addi(T1, T1, 1);
    a.slti(T8, T1, 8);
    a.bne(T8, ZERO, px_l);
    a.addi(T0, T0, 1);
    a.slti(T8, T0, 8);
    a.bne(T8, ZERO, py_l);
    a.bge(S11, S9, keep);
    a.mov(S9, S11);
    a.bind(keep);
    a.addi(S10, S10, 1);
    a.bge(S6, S10, dx_l);
    a.addi(T9, T9, 1);
    a.bge(S6, T9, dy_l);
    // Store best SAD for this block.
    a.mul(T2, S7, S3);
    a.add(T2, T2, S8);
    a.slli(T2, T2, 2);
    a.add(T2, S2, T2);
    a.st4(S9, T2, 0);
    a.addi(S8, S8, 1);
    a.blt(S8, S3, bx_l);
    a.addi(S7, S7, 1);
    a.blt(S7, S4, by_l);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_image(vm.mem_mut(), DATA_BASE, w, h);
    g.fill_image(vm.mem_mut(), DATA2_BASE, w, h);
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use super::FilterKind;
    use crate::kernels::test_support::mix_of;

    #[test]
    fn raster_fills_pixels() {
        let mix = mix_of(super::raster(128, 64, false, 1).unwrap(), 80_000);
        assert!(mix.int_mul > 0.05, "edge functions multiply: {}", mix.int_mul);
        assert!(mix.control > 0.1);
    }

    #[test]
    fn textured_raster_loads_texels() {
        let plain = mix_of(super::raster(128, 64, false, 1).unwrap(), 80_000);
        let tex = mix_of(super::raster(128, 64, true, 1).unwrap(), 80_000);
        assert!(tex.loads >= plain.loads, "texture sampling adds loads");
    }

    #[test]
    fn all_filters_run() {
        for kind in [
            FilterKind::Smooth,
            FilterKind::Edges,
            FilterKind::Median,
            FilterKind::Dither,
            FilterKind::Convert,
        ] {
            let mix = mix_of(super::image_filter(96, 96, kind, 2).unwrap(), 50_000);
            assert!(mix.loads > 0.05, "{kind:?}: loads {}", mix.loads);
        }
    }

    #[test]
    fn median_is_much_branchier_than_smooth() {
        let smooth = mix_of(super::image_filter(96, 96, FilterKind::Smooth, 2).unwrap(), 50_000);
        let median = mix_of(super::image_filter(96, 96, FilterKind::Median, 2).unwrap(), 50_000);
        assert!(median.control > smooth.control + 0.05);
    }

    #[test]
    fn motion_est_is_sad_loop() {
        let mix = mix_of(super::motion_est(64, 64, 3, 3).unwrap(), 80_000);
        assert!(mix.loads > 0.07, "loads {}", mix.loads);
        assert!(mix.control > 0.1);
    }
    #[test]
    fn corners_filter_runs_and_is_branchy() {
        let mix = mix_of(
            super::image_filter(96, 96, FilterKind::Corners, 2).unwrap(),
            60_000,
        );
        assert!(mix.control > 0.15, "control {}", mix.control);
        assert!(mix.loads > 0.12, "5x5 window loads: {}", mix.loads);
    }

}

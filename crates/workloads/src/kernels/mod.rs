//! The kernel zoo: every algorithm family the 122 benchmark instances are
//! built from.

mod bio;
mod compress;
mod crypto;
mod dsp;
mod graph;
mod linalg;
mod media;
mod misc;

pub use media::FilterKind;
pub use misc::SchedKind;

use tinyisa::{AsmError, Vm};

/// An algorithm kernel plus its parameters. [`Kernel::build_vm`] assembles
/// the program and initializes its input data (deterministically from
/// `seed`), producing a VM that runs the workload in an endless steady-state
/// loop — execution length is controlled purely by the fuel passed to
/// [`Vm::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Banded Smith-Waterman-style DP alignment.
    DpAlign { m: u64, band: u64, alphabet: u8 },
    /// blast-class large-database scan with hash seeding.
    DbScan { db_bytes: u64, word: u64 },
    /// Markov-model sequence scoring (glimmer).
    MarkovScan { seq_bytes: u64, order: u32 },
    /// Viterbi max-plus DP (hmmer).
    Viterbi { states: u64, steps: u64 },
    /// Recursive phylogenetic likelihood (phylip).
    PhyloEval { leaves: u64, sites: u64 },
    /// Dense FP matrix multiply.
    Gemm { n: u64 },
    /// Covariance accumulation over sample vectors.
    Covariance { dims: u64, samples: u64 },
    /// Five-point Jacobi stencil.
    Stencil { w: u64, h: u64, iters: u64 },
    /// CSR sparse matrix-vector product.
    Spmv { rows: u64, nnz_per_row: u64 },
    /// Winner-take-all neural prototype scan (art, speech GMMs).
    NnScan { neurons: u64, dims: u64 },
    /// LU decomposition with partial pivoting.
    LuSolve { n: u64 },
    /// Iterative radix-2 complex FFT.
    Fft { log2n: u32 },
    /// FIR filtering.
    Fir { taps: u64, samples: u64 },
    /// IMA-style ADPCM coding.
    Adpcm { samples: u64, decode: bool },
    /// 8x8 DCT + quantization.
    Dct8x8 { blocks: u64, quality: u64 },
    /// Haar-style lifting wavelet.
    Wavelet { len: u64, levels: u64, inverse: bool },
    /// Scalar math loops (Newton sqrt, cubics, GCD).
    Basicmath { values: u64 },
    /// Windowed MDCT filterbank (audio coders).
    Mdct { frames: u64, block: u64 },
    /// Feistel block cipher with S-boxes.
    Feistel { blocks: u64, rounds: u64, sbox_bits: u32 },
    /// SHA-1-style compression rounds.
    Sha { bytes: u64 },
    /// Table-driven CRC32.
    Crc32 { bytes: u64 },
    /// Multi-limb modular exponentiation.
    ModExp { words: u64, exp_bits: u64 },
    /// Reed-Solomon GF(256) coding.
    ReedSolomon { blocks: u64, msg_len: u64, nsym: u64 },
    /// Hash-chain LZ77 compression.
    LzCompress { bytes: u64, window: u64, entropy: u64 },
    /// LZ77 decompression of a host-compressed stream.
    LzDecompress { bytes: u64, entropy: u64 },
    /// bzip2-flavored block transform (counting sort + MTF).
    Bwtish { block: u64, entropy: u64 },
    /// Heapless Dijkstra over a dense adjacency matrix.
    Dijkstra { nodes: u64 },
    /// Radix-trie lookups (patricia, route tables).
    TrieLookup { keys: u64, queries: u64, depth: u64 },
    /// mcf-class pointer chasing over a shuffled ring.
    PointerChase { nodes: u64, node_bytes: u64 },
    /// Open-addressed hash-dictionary probing.
    HashDict { entries: u64, queries: u64, hit_rate: u64 },
    /// Scanline triangle rasterization.
    Raster { size: u64, tris: u64, textured: bool },
    /// Image filtering (smooth/edges/median/dither/convert).
    ImageFilter { w: u64, h: u64, kind: FilterKind },
    /// Block motion estimation (SAD search).
    MotionEst { w: u64, h: u64, range: u64 },
    /// Bytecode interpreter with compare-chain dispatch.
    Interp { program_len: u64 },
    /// Bitboard manipulation and popcounts.
    Bitops { words: u64 },
    /// Iterative quicksort of keyed records.
    Qsort { elems: u64 },
    /// Ray-sphere tracing with a called intersection routine.
    Raytrace { spheres: u64, rays: u64 },
    /// Packet processing (DRR / fragmentation / TCP monitoring).
    QueueSched { packets: u64, kind: SchedKind },
    /// Greedy justified line breaking over a linked word list.
    TextLayout { words: u64, line_width: u64 },
    /// Simulated-annealing placement (random swaps, accept/reject).
    Annealing { cells: u64, sweeps: u64, temp: u64 },
    /// Canonical-Huffman bitstream decoding (entropy decode).
    HuffmanDecode { symbols: u64, stream_bytes: u64 },
    /// Boyer-Moore-Horspool multi-pattern text search.
    StrSearch { text_bytes: u64, patterns: u64, pat_len: u64, alphabet: u8 },
}

impl Kernel {
    /// Assemble the kernel and initialize its data from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if the generated program fails to assemble
    /// (which would be a bug in the kernel builder, but is surfaced rather
    /// than panicking).
    pub fn build_vm(&self, seed: u64) -> Result<Vm, AsmError> {
        match *self {
            Kernel::DpAlign { m, band, alphabet } => bio::dp_align(m, band, alphabet, seed),
            Kernel::DbScan { db_bytes, word } => bio::db_scan(db_bytes, word, seed),
            Kernel::MarkovScan { seq_bytes, order } => bio::markov_scan(seq_bytes, order, seed),
            Kernel::Viterbi { states, steps } => bio::viterbi(states, steps, seed),
            Kernel::PhyloEval { leaves, sites } => bio::phylo_eval(leaves, sites, seed),
            Kernel::Gemm { n } => linalg::gemm(n, seed),
            Kernel::Covariance { dims, samples } => linalg::covariance(dims, samples, seed),
            Kernel::Stencil { w, h, iters } => linalg::stencil(w, h, iters, seed),
            Kernel::Spmv { rows, nnz_per_row } => linalg::spmv(rows, nnz_per_row, seed),
            Kernel::NnScan { neurons, dims } => linalg::nn_scan(neurons, dims, seed),
            Kernel::LuSolve { n } => linalg::lu_solve(n, seed),
            Kernel::Fft { log2n } => dsp::fft(log2n, seed),
            Kernel::Fir { taps, samples } => dsp::fir(taps, samples, seed),
            Kernel::Adpcm { samples, decode } => dsp::adpcm(samples, decode, seed),
            Kernel::Dct8x8 { blocks, quality } => dsp::dct8x8(blocks, quality, seed),
            Kernel::Wavelet { len, levels, inverse } => dsp::wavelet(len, levels, inverse, seed),
            Kernel::Basicmath { values } => dsp::basicmath(values, seed),
            Kernel::Mdct { frames, block } => dsp::mdct(frames, block, seed),
            Kernel::Feistel { blocks, rounds, sbox_bits } => {
                crypto::feistel(blocks, rounds, sbox_bits, seed)
            }
            Kernel::Sha { bytes } => crypto::sha(bytes, seed),
            Kernel::Crc32 { bytes } => crypto::crc32(bytes, seed),
            Kernel::ModExp { words, exp_bits } => crypto::modexp(words, exp_bits, seed),
            Kernel::ReedSolomon { blocks, msg_len, nsym } => {
                crypto::reed_solomon(blocks, msg_len, nsym, seed)
            }
            Kernel::LzCompress { bytes, window, entropy } => {
                compress::lz_compress(bytes, window, entropy, seed)
            }
            Kernel::LzDecompress { bytes, entropy } => {
                compress::lz_decompress(bytes, entropy, seed)
            }
            Kernel::Bwtish { block, entropy } => compress::bwtish(block, entropy, seed),
            Kernel::Dijkstra { nodes } => graph::dijkstra(nodes, seed),
            Kernel::TrieLookup { keys, queries, depth } => {
                graph::trie_lookup(keys, queries, depth, seed)
            }
            Kernel::PointerChase { nodes, node_bytes } => {
                graph::pointer_chase(nodes, node_bytes, seed)
            }
            Kernel::HashDict { entries, queries, hit_rate } => {
                graph::hash_dict(entries, queries, hit_rate, seed)
            }
            Kernel::Raster { size, tris, textured } => media::raster(size, tris, textured, seed),
            Kernel::ImageFilter { w, h, kind } => media::image_filter(w, h, kind, seed),
            Kernel::MotionEst { w, h, range } => media::motion_est(w, h, range, seed),
            Kernel::Interp { program_len } => misc::interp(program_len, seed),
            Kernel::Bitops { words } => misc::bitops(words, seed),
            Kernel::Qsort { elems } => misc::qsort(elems, seed),
            Kernel::Raytrace { spheres, rays } => misc::raytrace(spheres, rays, seed),
            Kernel::QueueSched { packets, kind } => misc::queue_sched(packets, kind, seed),
            Kernel::TextLayout { words, line_width } => {
                misc::text_layout(words, line_width, seed)
            }
            Kernel::Annealing { cells, sweeps, temp } => {
                misc::annealing(cells, sweeps, temp, seed)
            }
            Kernel::HuffmanDecode { symbols, stream_bytes } => {
                misc::huffman_decode(symbols, stream_bytes, seed)
            }
            Kernel::StrSearch { text_bytes, patterns, pat_len, alphabet } => {
                graph::str_search(text_bytes, patterns, pat_len, alphabet, seed)
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use tinyisa::{DynInst, InstClass, RunExit, TraceSink, Vm};

    /// Instruction-class fractions observed while burning `fuel`.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct MixCounts {
        pub loads: f64,
        pub stores: f64,
        pub control: f64,
        pub arith: f64,
        pub int_mul: f64,
        pub fp: f64,
    }

    #[derive(Default)]
    struct Counter {
        counts: [u64; 6],
        total: u64,
    }

    impl TraceSink for Counter {
        fn retire(&mut self, inst: &DynInst) {
            self.total += 1;
            let i = match inst.class {
                InstClass::Load => 0,
                InstClass::Store => 1,
                InstClass::Branch | InstClass::Jump => 2,
                InstClass::IntAlu => 3,
                InstClass::IntMul => 4,
                InstClass::Fp => 5,
            };
            self.counts[i] += 1;
        }
    }

    /// Run `fuel` instructions, asserting the kernel loops forever (fuel
    /// exhaustion, never a halt or crash), and return the class mix.
    pub fn mix_of(mut vm: Vm, fuel: u64) -> MixCounts {
        let mut c = Counter::default();
        let exit = vm.run(&mut c, fuel).expect("kernel must not fault");
        assert_eq!(exit, RunExit::FuelExhausted, "kernels run until out of fuel");
        let t = c.total.max(1) as f64;
        MixCounts {
            loads: c.counts[0] as f64 / t,
            stores: c.counts[1] as f64 / t,
            control: c.counts[2] as f64 / t,
            arith: c.counts[3] as f64 / t,
            int_mul: c.counts[4] as f64 / t,
            fp: c.counts[5] as f64 / t,
        }
    }

    /// Run and assert fuel exhaustion only.
    pub fn run_fuel(vm: Vm, fuel: u64) {
        let _ = mix_of(vm, fuel);
    }
}

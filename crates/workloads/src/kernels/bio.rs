//! Bioinformatics kernels: banded dynamic-programming alignment, database
//! scanning, Markov-model scoring, Viterbi decoding, and phylogenetic
//! tree evaluation.

use crate::data::DataGen;
use crate::{DATA2_BASE, DATA3_BASE, DATA_BASE, STACK_TOP};
use tinyisa::{regs::*, Asm, AsmError, Vm};

/// Banded Smith-Waterman-style alignment of two sequences over a given
/// alphabet: the DP core of clustalw, fasta, ce and predator. The DP row
/// buffer working set scales with `band`.
pub(crate) fn dp_align(m: u64, band: u64, alphabet: u8, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // seq A (m bytes)
    a.li(S1, (DATA_BASE + m) as i64); // seq B
    a.li(S2, DATA2_BASE as i64); // previous DP row (i64 x band)
    a.li(S3, (DATA2_BASE + band * 8) as i64); // current DP row
    a.li(S4, m as i64);
    a.li(S5, band as i64);
    let outer = a.label();
    a.bind(outer);
    let (i_loop, j_loop, row_swap) = (a.label(), a.label(), a.label());
    a.li(T0, 1); // i
    a.bind(i_loop);
    a.add(T1, S0, T0);
    a.ld1(S6, T1, 0); // A[i]
    a.li(T2, 1); // j (within band)
    a.bind(j_loop);
    a.add(T3, S1, T2);
    a.ld1(T4, T3, 0); // B[j]
    // score = (A[i] == B[j]) ? 2 : -1
    let (mismatch, scored) = (a.label(), a.label());
    a.bne(S6, T4, mismatch);
    a.li(T5, 2);
    a.jmp(scored);
    a.bind(mismatch);
    a.li(T5, -1);
    a.bind(scored);
    // diag = prev[j-1] + score; up = prev[j] - 1; left = cur[j-1] - 1
    a.slli(T6, T2, 3);
    a.add(T7, S2, T6);
    a.ld8(T8, T7, -8);
    a.add(T8, T8, T5); // diag
    a.ld8(T9, T7, 0);
    a.addi(T9, T9, -1); // up
    a.add(T7, S3, T6);
    a.ld8(T5, T7, -8);
    a.addi(T5, T5, -1); // left
    // cell = max(0, diag, up, left)
    let (d1, d2, d3) = (a.label(), a.label(), a.label());
    a.bge(T8, T9, d1);
    a.mov(T8, T9);
    a.bind(d1);
    a.bge(T8, T5, d2);
    a.mov(T8, T5);
    a.bind(d2);
    a.bge(T8, ZERO, d3);
    a.li(T8, 0);
    a.bind(d3);
    a.st8(T8, T7, 0);
    a.addi(T2, T2, 1);
    a.blt(T2, S5, j_loop);
    // Swap row pointers.
    a.mov(T3, S2);
    a.mov(S2, S3);
    a.mov(S3, T3);
    // Intentional jump-to-fallthrough (mica-lint warns): the merge jump
    // unoptimized codegen emits after the swap arm; keeps a taken `jmp`
    // in the characterized control mix.
    a.jmp(row_swap);
    a.bind(row_swap);
    a.addi(T0, T0, 1);
    a.blt(T0, S4, i_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_alphabet(vm.mem_mut(), DATA_BASE, m, alphabet);
    g.fill_alphabet(vm.mem_mut(), DATA_BASE + m, band + 2, alphabet);
    Ok(vm)
}

/// blast-class database scan: slide a query fingerprint over a very large
/// sequence database with word-hash seeding; hits trigger a short
/// verification loop. The database size dominates the data working set.
pub(crate) fn db_scan(db_bytes: u64, word: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // database
    a.li(S1, DATA2_BASE as i64); // query (64 bytes)
    a.li(S2, DATA3_BASE as i64); // hit counters (u32 x 4096)
    a.li(S3, (db_bytes - 64) as i64);
    a.li(S4, word as i64);
    let outer = a.label();
    a.bind(outer);
    let (scan, verify, verify_loop, nohit, next) =
        (a.label(), a.label(), a.label(), a.label(), a.label());
    a.li(T0, 0); // db position
    a.bind(scan);
    // Rolling word hash of `word` bytes.
    a.li(T1, 0); // hash
    a.li(T2, 0); // k
    let hash_loop = a.label();
    a.bind(hash_loop);
    a.add(T3, S0, T0);
    a.add(T3, T3, T2);
    a.ld1(T4, T3, 0);
    a.slli(T1, T1, 2);
    a.xor(T1, T1, T4);
    a.addi(T2, T2, 1);
    a.blt(T2, S4, hash_loop);
    a.andi(T1, T1, 4095);
    // Seed hit if hash matches low bits of query fingerprint byte.
    a.add(T5, S1, ZERO);
    a.ld1(T6, T5, 0);
    a.andi(T6, T6, 63);
    a.andi(T7, T1, 63);
    a.beq(T6, T7, verify);
    a.jmp(nohit);
    a.bind(verify);
    // Verify: compare 16 query bytes at this position.
    a.li(T2, 0);
    a.li(T8, 0); // matches
    a.bind(verify_loop);
    a.add(T3, S0, T0);
    a.add(T3, T3, T2);
    a.ld1(T4, T3, 0);
    a.add(T5, S1, T2);
    a.ld1(T6, T5, 0);
    let nom = a.label();
    a.bne(T4, T6, nom);
    a.addi(T8, T8, 1);
    a.bind(nom);
    a.addi(T2, T2, 1);
    a.slti(T9, T2, 16);
    a.bne(T9, ZERO, verify_loop);
    // Record the hit count in a histogram bucket.
    a.slli(T9, T1, 2);
    a.add(T9, S2, T9);
    a.ld4(T4, T9, 0);
    a.add(T4, T4, T8);
    a.st4(T4, T9, 0);
    a.bind(nohit);
    // Intentional jump-to-fallthrough (mica-lint warns): the no-hit arm's
    // merge jump, kept for the characterized control mix.
    a.jmp(next);
    a.bind(next);
    a.addi(T0, T0, 7); // skip-stride scan
    a.blt(T0, S3, scan);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_alphabet(vm.mem_mut(), DATA_BASE, db_bytes, 20); // protein-like
    g.fill_alphabet(vm.mem_mut(), DATA2_BASE, 64, 20);
    Ok(vm)
}

/// glimmer-class interpolated-Markov scoring: walk a sequence, index a
/// `k`-mer context table of log-probabilities and accumulate.
pub(crate) fn markov_scan(seq_bytes: u64, order: u32, seed: u64) -> Result<Vm, AsmError> {
    let table_entries = 1u64 << (2 * order); // DNA: 2 bits per base
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // sequence (2-bit coded bases, one per byte)
    a.li(S1, DATA2_BASE as i64); // probability table (f64)
    a.li(S2, (seq_bytes - order as u64 - 1) as i64);
    a.li(S3, (table_entries - 1) as i64);
    a.li(S4, order as i64);
    let outer = a.label();
    a.bind(outer);
    let (i_loop, ctx_loop) = (a.label(), a.label());
    a.li(T0, 0);
    a.fli(F0, 0.0); // score
    a.bind(i_loop);
    // Build context index from `order` bases.
    a.li(T1, 0);
    a.li(T2, 0);
    a.bind(ctx_loop);
    a.add(T3, S0, T0);
    a.add(T3, T3, T2);
    a.ld1(T4, T3, 0);
    a.slli(T1, T1, 2);
    a.or(T1, T1, T4);
    a.addi(T2, T2, 1);
    a.blt(T2, S4, ctx_loop);
    a.and(T1, T1, S3);
    a.slli(T1, T1, 3);
    a.add(T1, S1, T1);
    a.ldf(F1, T1, 0);
    a.fadd(F0, F0, F1);
    a.addi(T0, T0, 1);
    a.blt(T0, S2, i_loop);
    a.li(T5, DATA3_BASE as i64);
    a.stf(F0, T5, 0);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_alphabet(vm.mem_mut(), DATA_BASE, seq_bytes, 4);
    g.fill_f64(vm.mem_mut(), DATA2_BASE, table_entries);
    Ok(vm)
}

/// hmmer-class Viterbi decoding: integer max-plus DP over `states` HMM
/// states per sequence position (match/insert/delete transitions).
pub(crate) fn viterbi(states: u64, steps: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // previous scores (i64 x states)
    a.li(S1, (DATA_BASE + states * 8) as i64); // current scores
    a.li(S2, DATA2_BASE as i64); // transition costs (i64 x states x 3)
    a.li(S3, DATA3_BASE as i64); // observation sequence (bytes)
    a.li(S4, states as i64);
    a.li(S5, steps as i64);
    let outer = a.label();
    a.bind(outer);
    let (t_loop, s_loop) = (a.label(), a.label());
    a.li(T0, 1); // t
    a.bind(t_loop);
    a.add(T1, S3, T0);
    a.ld1(S7, T1, 0); // observation
    a.li(T2, 1); // state (leave edges at 0)
    a.bind(s_loop);
    a.slli(T3, T2, 3);
    // candidates: prev[s-1] + tc[s][0], prev[s] + tc[s][1], cur[s-1] + tc[s][2]
    a.add(T4, S0, T3);
    a.ld8(T5, T4, -8);
    a.ld8(T6, T4, 0);
    a.slli(T7, T2, 5); // s * 32 (3 costs padded to 4)
    a.add(T7, S2, T7);
    a.ld8(T8, T7, 0);
    a.add(T5, T5, T8); // diag
    a.ld8(T8, T7, 8);
    a.add(T6, T6, T8); // up
    a.add(T9, S1, T3);
    a.ld8(T1, T9, -8);
    a.ld8(T8, T7, 16);
    a.add(T1, T1, T8); // left
    let (m1, m2) = (a.label(), a.label());
    a.bge(T5, T6, m1);
    a.mov(T5, T6);
    a.bind(m1);
    a.bge(T5, T1, m2);
    a.mov(T5, T1);
    a.bind(m2);
    // Add emission score derived from the observation.
    a.xor(T6, T2, S7);
    a.andi(T6, T6, 7);
    a.sub(T5, T5, T6);
    a.st8(T5, T9, 0);
    a.addi(T2, T2, 1);
    a.blt(T2, S4, s_loop);
    // Swap rows.
    a.mov(T3, S0);
    a.mov(S0, S1);
    a.mov(S1, T3);
    a.addi(T0, T0, 1);
    a.blt(T0, S5, t_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_u64_below(vm.mem_mut(), DATA2_BASE, states * 4, 16);
    g.fill_alphabet(vm.mem_mut(), DATA3_BASE, steps + 1, 20);
    Ok(vm)
}

/// phylip-class phylogenetic likelihood: post-order traversal of a binary
/// tree with explicit recursion (call/ret and a real stack), combining
/// per-site FP likelihoods at each internal node.
pub(crate) fn phylo_eval(leaves: u64, sites: u64, seed: u64) -> Result<Vm, AsmError> {
    let nodes = 2 * leaves - 1;
    let mut a = Asm::new();
    // Node layout (32 bytes): left(u32), right(u32), lik array ptr(u64),
    // branch length (f64), pad. Leaves have left == right == 0xffffffff.
    a.li(S0, DATA_BASE as i64); // node table
    a.li(S1, sites as i64);
    a.li(SP, STACK_TOP as i64);
    let (outer, recurse, is_leaf, after) = (a.label(), a.label(), a.label(), a.label());
    a.bind(outer);
    a.li(A0, (nodes - 1) as i64); // root index
    a.call(recurse);
    a.jmp(outer);

    // fn recurse(A0 = node index)
    a.bind(recurse);
    a.slli(T0, A0, 5);
    a.add(T0, S0, T0); // node base
    a.ld4(T1, T0, 0); // left
    a.li(T2, 0xffff_ffff);
    a.beq(T1, T2, is_leaf);
    // Internal: push node + ra, recurse on children.
    a.addi(SP, SP, -24);
    a.st8(RA, SP, 0);
    a.st8(A0, SP, 8);
    a.st8(T1, SP, 16);
    a.mov(A0, T1);
    a.call(recurse);
    a.ld8(T3, SP, 8); // this node
    a.slli(T0, T3, 5);
    a.add(T0, S0, T0);
    a.ld4(A0, T0, 4); // right child
    a.call(recurse);
    // Combine children likelihoods into this node, per site.
    a.ld8(A0, SP, 8);
    a.slli(T0, A0, 5);
    a.add(T0, S0, T0);
    a.ld4(T1, T0, 0);
    a.ld4(T2, T0, 4);
    a.ld8(T4, T0, 8); // own lik ptr
    a.ldf(F3, T0, 16); // branch length
    a.slli(T5, T1, 5);
    a.add(T5, S0, T5);
    a.ld8(T5, T5, 8); // left lik ptr
    a.slli(T6, T2, 5);
    a.add(T6, S0, T6);
    a.ld8(T6, T6, 8); // right lik ptr
    let site_loop = a.label();
    a.li(T7, 0);
    a.bind(site_loop);
    a.slli(T8, T7, 3);
    a.add(T9, T5, T8);
    a.ldf(F0, T9, 0);
    a.add(T9, T6, T8);
    a.ldf(F1, T9, 0);
    a.fmul(F0, F0, F1);
    a.fmul(F0, F0, F3); // scale by branch factor
    a.fli(F2, 1e-3);
    a.fadd(F0, F0, F2); // avoid underflow to zero
    a.add(T9, T4, T8);
    a.stf(F0, T9, 0);
    a.addi(T7, T7, 1);
    a.blt(T7, S1, site_loop);
    a.ld8(RA, SP, 0);
    a.addi(SP, SP, 24);
    a.ret();
    a.bind(is_leaf);
    // Intentional jump-to-fallthrough (mica-lint warns): the leaf arm's
    // merge jump, kept for the characterized control mix.
    a.jmp(after);
    a.bind(after);
    a.ret();

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    // Build a balanced tree: internal node i has children 2i+1, 2i+2 in a
    // heap-like layout, stored in reverse so the root is the last node.
    let lik_base = DATA2_BASE;
    for n in 0..nodes {
        let node_addr = DATA_BASE + n * 32;
        // Heap index counted from the root at `nodes - 1`.
        let heap = nodes - 1 - n;
        let (l, r) = (2 * heap + 1, 2 * heap + 2);
        if l < nodes {
            vm.mem_mut().write_le(node_addr, 4, nodes - 1 - l);
            vm.mem_mut().write_le(node_addr + 4, 4, nodes - 1 - r);
        } else {
            vm.mem_mut().write_le(node_addr, 4, 0xffff_ffff);
            vm.mem_mut().write_le(node_addr + 4, 4, 0xffff_ffff);
        }
        vm.mem_mut().write_le(node_addr + 8, 8, lik_base + n * sites * 8);
        vm.mem_mut().write_f64(node_addr + 16, 0.5 + g.unit_f64() * 0.5);
    }
    // Leaf likelihoods.
    for n in 0..nodes {
        for s in 0..sites {
            vm.mem_mut().write_f64(lik_base + (n * sites + s) * 8, 0.1 + g.unit_f64());
        }
    }
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use crate::kernels::test_support::mix_of;

    #[test]
    fn dp_align_is_branchy_int_dp() {
        let mix = mix_of(super::dp_align(512, 128, 20, 1).unwrap(), 60_000);
        assert!(mix.control > 0.15, "control {}", mix.control);
        assert!(mix.loads > 0.1);
        assert_eq!(mix.fp, 0.0);
    }

    #[test]
    fn db_scan_runs_over_big_table() {
        let mix = mix_of(super::db_scan(1 << 20, 8, 2).unwrap(), 80_000);
        assert!(mix.loads > 0.12, "loads {}", mix.loads);
    }

    #[test]
    fn markov_scan_mixes_fp_accumulation() {
        let mix = mix_of(super::markov_scan(1 << 14, 6, 3).unwrap(), 50_000);
        assert!(mix.fp > 0.01, "fp {}", mix.fp);
    }

    #[test]
    fn viterbi_is_integer_max_plus() {
        let mix = mix_of(super::viterbi(64, 256, 4).unwrap(), 60_000);
        assert!(mix.loads > 0.2);
        assert_eq!(mix.fp, 0.0);
    }

    #[test]
    fn phylo_uses_calls_and_fp() {
        let mix = mix_of(super::phylo_eval(64, 32, 5).unwrap(), 80_000);
        assert!(mix.fp > 0.1, "fp {}", mix.fp);
        assert!(mix.control > 0.05);
    }
}

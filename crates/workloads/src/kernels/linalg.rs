//! Dense and sparse linear-algebra kernels: matrix multiply, covariance
//! accumulation, grid stencils, CSR sparse matrix-vector products, and
//! winner-take-all neural scans.

use crate::data::DataGen;
use crate::{DATA2_BASE, DATA3_BASE, DATA_BASE};
use tinyisa::{regs::*, Asm, AsmError, Vm};

/// Dense double-precision matrix multiply `C = A * B` (n x n). The core of
/// the csu subspace projections, facerec, galgel and wupwise stand-ins.
pub(crate) fn gemm(n: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // A
    a.li(S1, (DATA_BASE + n * n * 8) as i64); // B
    a.li(S2, DATA2_BASE as i64); // C
    a.li(S3, n as i64);
    let outer = a.label();
    a.bind(outer);
    let (i_loop, j_loop, k_loop) = (a.label(), a.label(), a.label());
    a.li(T0, 0); // i
    a.bind(i_loop);
    a.li(T1, 0); // j
    a.bind(j_loop);
    a.fli(F0, 0.0);
    a.li(T2, 0); // k
    a.mul(T3, T0, S3);
    a.slli(T3, T3, 3);
    a.add(T3, S0, T3); // row base of A
    a.bind(k_loop);
    a.slli(T4, T2, 3);
    a.add(T4, T3, T4);
    a.ldf(F1, T4, 0); // A[i][k]
    a.mul(T5, T2, S3);
    a.add(T5, T5, T1);
    a.slli(T5, T5, 3);
    a.add(T5, S1, T5);
    a.ldf(F2, T5, 0); // B[k][j] (column walk: big strides)
    a.fmul(F1, F1, F2);
    a.fadd(F0, F0, F1);
    a.addi(T2, T2, 1);
    a.blt(T2, S3, k_loop);
    a.mul(T6, T0, S3);
    a.add(T6, T6, T1);
    a.slli(T6, T6, 3);
    a.add(T6, S2, T6);
    a.stf(F0, T6, 0);
    a.addi(T1, T1, 1);
    a.blt(T1, S3, j_loop);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, i_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_f64(vm.mem_mut(), DATA_BASE, 2 * n * n);
    Ok(vm)
}

/// Covariance-matrix accumulation over `samples` vectors of `dims` doubles:
/// `C[i][j] += x[i] * x[j]` — the training passes of csu Bayesian/subspace
/// and the GMM evaluation of speak.
pub(crate) fn covariance(dims: u64, samples: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // sample matrix
    a.li(S1, DATA2_BASE as i64); // covariance accumulator
    a.li(S2, dims as i64);
    a.li(S3, samples as i64);
    let outer = a.label();
    a.bind(outer);
    let (s_loop, i_loop, j_loop) = (a.label(), a.label(), a.label());
    a.li(T0, 0); // sample
    a.bind(s_loop);
    a.mul(T1, T0, S2);
    a.slli(T1, T1, 3);
    a.add(T1, S0, T1); // sample base
    a.li(T2, 0); // i
    a.bind(i_loop);
    a.slli(T3, T2, 3);
    a.add(T3, T1, T3);
    a.ldf(F0, T3, 0); // x[i]
    a.li(T4, 0); // j
    a.bind(j_loop);
    a.slli(T5, T4, 3);
    a.add(T5, T1, T5);
    a.ldf(F1, T5, 0); // x[j]
    a.fmul(F1, F0, F1);
    a.mul(T6, T2, S2);
    a.add(T6, T6, T4);
    a.slli(T6, T6, 3);
    a.add(T6, S1, T6);
    a.ldf(F2, T6, 0);
    a.fadd(F2, F2, F1);
    a.stf(F2, T6, 0);
    a.addi(T4, T4, 1);
    a.blt(T4, S2, j_loop);
    a.addi(T2, T2, 1);
    a.blt(T2, S2, i_loop);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, s_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_f64(vm.mem_mut(), DATA_BASE, dims * samples);
    Ok(vm)
}

/// Five-point Jacobi stencil over a `w x h` double grid, `iters` sweeps per
/// pass: applu/mgrid/swim/apsi-class structured-grid code.
pub(crate) fn stencil(w: u64, h: u64, iters: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // grid in
    a.li(S1, (DATA_BASE + w * h * 8) as i64); // grid out
    a.li(S2, w as i64);
    a.li(S3, h as i64);
    a.li(S4, iters as i64);
    a.fli(F15, 0.2);
    let outer = a.label();
    a.bind(outer);
    let (it_loop, y_loop, x_loop) = (a.label(), a.label(), a.label());
    a.li(T9, 0); // iter
    a.bind(it_loop);
    a.li(T0, 1); // y
    a.bind(y_loop);
    a.mul(T2, T0, S2);
    a.slli(T2, T2, 3);
    a.add(T2, S0, T2); // row base
    a.li(T1, 1); // x
    a.bind(x_loop);
    a.slli(T3, T1, 3);
    a.add(T3, T2, T3); // &in[y][x]
    a.ldf(F0, T3, 0);
    a.ldf(F1, T3, -8);
    a.ldf(F2, T3, 8);
    let row_bytes = (w * 8) as i64;
    a.ldf(F3, T3, -row_bytes);
    a.ldf(F4, T3, row_bytes);
    a.fadd(F0, F0, F1);
    a.fadd(F0, F0, F2);
    a.fadd(F0, F0, F3);
    a.fadd(F0, F0, F4);
    a.fmul(F0, F0, F15);
    // out[y][x]
    a.sub(T4, S1, S0);
    a.add(T4, T3, T4);
    a.stf(F0, T4, 0);
    a.addi(T1, T1, 1);
    a.addi(T5, S2, -1);
    a.blt(T1, T5, x_loop);
    a.addi(T0, T0, 1);
    a.addi(T5, S3, -1);
    a.blt(T0, T5, y_loop);
    // Swap grids.
    a.mov(T6, S0);
    a.mov(S0, S1);
    a.mov(S1, T6);
    a.addi(T9, T9, 1);
    a.blt(T9, S4, it_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_f64(vm.mem_mut(), DATA_BASE, 2 * w * h);
    Ok(vm)
}

/// CSR sparse matrix-vector product `y = A x`: equake/ammp-class irregular
/// gather traffic. `nnz_per_row` controls row density.
pub(crate) fn spmv(rows: u64, nnz_per_row: u64, seed: u64) -> Result<Vm, AsmError> {
    let nnz = rows * nnz_per_row;
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // values (f64 x nnz)
    a.li(S1, (DATA_BASE + nnz * 8) as i64); // column indices (u32 x nnz)
    a.li(S2, DATA2_BASE as i64); // x vector
    a.li(S3, DATA3_BASE as i64); // y vector
    a.li(S4, rows as i64);
    a.li(S5, nnz_per_row as i64);
    let outer = a.label();
    a.bind(outer);
    let (r_loop, e_loop) = (a.label(), a.label());
    a.li(T0, 0); // row
    a.bind(r_loop);
    a.fli(F0, 0.0);
    a.mul(T1, T0, S5); // first element index
    a.li(T2, 0); // element in row
    a.bind(e_loop);
    a.add(T3, T1, T2);
    a.slli(T4, T3, 3);
    a.add(T4, S0, T4);
    a.ldf(F1, T4, 0); // value
    a.slli(T4, T3, 2);
    a.add(T4, S1, T4);
    a.ld4(T5, T4, 0); // column
    a.slli(T5, T5, 3);
    a.add(T5, S2, T5);
    a.ldf(F2, T5, 0); // x[col] — irregular gather
    a.fmul(F1, F1, F2);
    a.fadd(F0, F0, F1);
    a.addi(T2, T2, 1);
    a.blt(T2, S5, e_loop);
    a.slli(T6, T0, 3);
    a.add(T6, S3, T6);
    a.stf(F0, T6, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S4, r_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_f64(vm.mem_mut(), DATA_BASE, nnz);
    g.fill_u32_below(vm.mem_mut(), DATA_BASE + nnz * 8, nnz, rows);
    g.fill_f64(vm.mem_mut(), DATA2_BASE, rows);
    Ok(vm)
}

/// art-class winner-take-all neural scan: repeatedly compute dot products
/// of an input vector against every prototype row and track the maximum.
pub(crate) fn nn_scan(neurons: u64, dims: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // weight matrix (neurons x dims)
    a.li(S1, DATA2_BASE as i64); // input vector
    a.li(S2, neurons as i64);
    a.li(S3, dims as i64);
    let outer = a.label();
    a.bind(outer);
    let (n_loop, d_loop, no_new_max) = (a.label(), a.label(), a.label());
    a.li(T0, 0); // neuron
    a.fli(F10, -1e300); // best
    a.li(S4, 0); // best index
    a.bind(n_loop);
    a.fli(F0, 0.0);
    a.mul(T1, T0, S3);
    a.slli(T1, T1, 3);
    a.add(T1, S0, T1);
    a.li(T2, 0); // dim
    a.bind(d_loop);
    a.slli(T3, T2, 3);
    a.add(T4, T1, T3);
    a.ldf(F1, T4, 0);
    a.add(T4, S1, T3);
    a.ldf(F2, T4, 0);
    a.fmul(F1, F1, F2);
    a.fadd(F0, F0, F1);
    a.addi(T2, T2, 1);
    a.blt(T2, S3, d_loop);
    a.fcmplt(T5, F10, F0);
    a.beq(T5, ZERO, no_new_max);
    a.fmov(F10, F0);
    a.mov(S4, T0);
    a.bind(no_new_max);
    a.addi(T0, T0, 1);
    a.blt(T0, S2, n_loop);
    // Reinforce the winner (adaptation pass).
    let adapt = a.label();
    a.mul(T1, S4, S3);
    a.slli(T1, T1, 3);
    a.add(T1, S0, T1);
    a.li(T2, 0);
    a.fli(F3, 1.001);
    a.bind(adapt);
    a.slli(T3, T2, 3);
    a.add(T4, T1, T3);
    a.ldf(F1, T4, 0);
    a.fmul(F1, F1, F3);
    a.stf(F1, T4, 0);
    a.addi(T2, T2, 1);
    a.blt(T2, S3, adapt);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_f64(vm.mem_mut(), DATA_BASE, neurons * dims);
    g.fill_f64(vm.mem_mut(), DATA2_BASE, dims);
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use crate::kernels::test_support::mix_of;

    #[test]
    fn gemm_is_fp_dominated() {
        let mix = mix_of(super::gemm(48, 1).unwrap(), 80_000);
        assert!(mix.fp > 0.12, "fp {}", mix.fp);
        assert!(mix.loads > 0.12);
    }

    #[test]
    fn covariance_streams_and_accumulates() {
        let mix = mix_of(super::covariance(32, 64, 2).unwrap(), 60_000);
        assert!(mix.fp > 0.15);
        assert!(mix.stores > 0.05, "read-modify-write of C: {}", mix.stores);
    }

    #[test]
    fn stencil_has_five_loads_per_store() {
        let mix = mix_of(super::stencil(64, 64, 4, 3).unwrap(), 60_000);
        assert!(mix.loads > 0.25, "loads {}", mix.loads);
        assert!(mix.fp > 0.2);
    }

    #[test]
    fn spmv_gathers() {
        let mix = mix_of(super::spmv(2048, 12, 4).unwrap(), 60_000);
        assert!(mix.loads > 0.2);
        assert!(mix.fp > 0.1);
    }

    #[test]
    fn nn_scan_runs_with_compares() {
        let mix = mix_of(super::nn_scan(64, 32, 5).unwrap(), 60_000);
        assert!(mix.fp > 0.2);
    }

    #[test]
    fn lu_solve_mixes_fp_with_pivot_branches() {
        let mix = mix_of(super::lu_solve(48, 6).unwrap(), 80_000);
        assert!(mix.fp > 0.1, "fp {}", mix.fp);
        assert!(mix.control > 0.08, "control {}", mix.control);
    }

}

/// LU decomposition with partial pivoting over an `n x n` double matrix:
/// dense FP inner loops plus data-dependent pivot-selection branches and
/// row swaps (galgel-class dense solver behavior).
pub(crate) fn lu_solve(n: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // matrix (overwritten in place)
    a.li(S3, n as i64);
    let outer = a.label();
    a.bind(outer);
    // Refresh the matrix from the pristine copy at DATA2_BASE.
    let copy = a.label();
    a.li(T0, 0);
    a.mul(T9, S3, S3);
    a.li(T8, DATA2_BASE as i64);
    a.bind(copy);
    a.slli(T1, T0, 3);
    a.add(T2, T8, T1);
    a.ldf(F0, T2, 0);
    a.add(T2, S0, T1);
    a.stf(F0, T2, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, T9, copy);

    let (col_loop, pivot_scan, no_new_pivot, swap_loop, swap_done, elim_i, elim_j, elim_done) = (
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
        a.label(),
    );
    a.li(S4, 0); // k (pivot column)
    a.bind(col_loop);
    // Find the largest |a[i][k]| for i >= k.
    a.mov(T0, S4);
    a.mov(S5, S4); // argmax
    a.fli(F10, -1.0); // max abs
    a.bind(pivot_scan);
    a.mul(T1, T0, S3);
    a.add(T1, T1, S4);
    a.slli(T1, T1, 3);
    a.add(T1, S0, T1);
    a.ldf(F0, T1, 0);
    a.fabs(F0, F0);
    a.fcmplt(T2, F10, F0);
    a.beq(T2, ZERO, no_new_pivot);
    a.fmov(F10, F0);
    a.mov(S5, T0);
    a.bind(no_new_pivot);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, pivot_scan);
    // Swap rows k and argmax.
    a.li(T0, 0);
    a.bind(swap_loop);
    a.beq(S5, S4, swap_done); // no swap needed (branch inside loop: cheap)
    a.mul(T1, S4, S3);
    a.add(T1, T1, T0);
    a.slli(T1, T1, 3);
    a.add(T1, S0, T1);
    a.mul(T2, S5, S3);
    a.add(T2, T2, T0);
    a.slli(T2, T2, 3);
    a.add(T2, S0, T2);
    a.ldf(F0, T1, 0);
    a.ldf(F1, T2, 0);
    a.stf(F1, T1, 0);
    a.stf(F0, T2, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, swap_loop);
    a.bind(swap_done);
    // Eliminate below the pivot.
    a.mul(T9, S4, S3);
    a.add(T9, T9, S4);
    a.slli(T9, T9, 3);
    a.add(T9, S0, T9);
    a.ldf(F9, T9, 0); // pivot value
    a.fli(F8, 1e-30);
    a.fadd(F9, F9, F8); // avoid exact zero
    a.addi(T0, S4, 1); // i
    a.bind(elim_i);
    a.bge(T0, S3, elim_done);
    a.mul(T1, T0, S3);
    a.add(T1, T1, S4);
    a.slli(T1, T1, 3);
    a.add(T1, S0, T1);
    a.ldf(F0, T1, 0);
    a.fdiv(F0, F0, F9); // multiplier
    a.stf(F0, T1, 0);
    a.addi(T2, S4, 1); // j
    a.bind(elim_j);
    a.mul(T3, T0, S3);
    a.add(T3, T3, T2);
    a.slli(T3, T3, 3);
    a.add(T3, S0, T3);
    a.ldf(F1, T3, 0);
    a.mul(T4, S4, S3);
    a.add(T4, T4, T2);
    a.slli(T4, T4, 3);
    a.add(T4, S0, T4);
    a.ldf(F2, T4, 0);
    a.fmul(F2, F0, F2);
    a.fsub(F1, F1, F2);
    a.stf(F1, T3, 0);
    a.addi(T2, T2, 1);
    a.blt(T2, S3, elim_j);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, elim_i);
    a.bind(elim_done);
    a.addi(S4, S4, 1);
    a.addi(T5, S3, -1);
    a.blt(S4, T5, col_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_f64(vm.mem_mut(), DATA2_BASE, n * n);
    // Make it diagonally dominant so elimination stays tame.
    for i in 0..n {
        vm.mem_mut().write_f64(DATA2_BASE + (i * n + i) * 8, 4.0 + g.unit_f64());
    }
    Ok(vm)
}

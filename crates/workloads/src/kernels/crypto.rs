//! Cryptography and coding kernels: Feistel block cipher, SHA-style hash,
//! CRC32, modular exponentiation, Reed-Solomon Galois-field coding.

use crate::data::DataGen;
use crate::{DATA2_BASE, DATA3_BASE, DATA_BASE};
use tinyisa::{regs::*, Asm, AsmError, Vm};

/// A Feistel-network block cipher with S-box lookups (CAST/Blowfish class):
/// `rounds` rounds over 8-byte blocks, four `1 << sbox_bits`-entry S-boxes.
pub(crate) fn feistel(blocks: u64, rounds: u64, sbox_bits: u32, seed: u64) -> Result<Vm, AsmError> {
    let sbox_entries = 1u64 << sbox_bits;
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // plaintext blocks
    a.li(S1, DATA2_BASE as i64); // s-boxes (4 tables of u32)
    a.li(S2, DATA3_BASE as i64); // round keys (u32)
    a.li(S3, blocks as i64);
    a.li(S4, rounds as i64);
    a.li(S5, (sbox_entries - 1) as i64); // index mask
    let outer = a.label();
    a.bind(outer);
    let (b_loop, r_loop) = (a.label(), a.label());
    a.li(T0, 0); // block
    a.bind(b_loop);
    a.slli(T1, T0, 3);
    a.add(T1, S0, T1);
    a.ld4(T2, T1, 0); // L
    a.ld4(T3, T1, 4); // R
    a.li(T4, 0); // round
    a.bind(r_loop);
    // F(R, k) = (S0[x>>24 & m] + S1[x>>16 & m]) ^ (S2[x>>8 & m] + S3[x & m])
    a.slli(T5, T4, 2);
    a.add(T5, S2, T5);
    a.ld4(T5, T5, 0); // round key
    a.xor(T5, T3, T5); // x = R ^ k
    // S-box 0 term.
    a.srli(T6, T5, 24);
    a.and(T6, T6, S5);
    a.slli(T6, T6, 2);
    a.add(T6, S1, T6);
    a.ld4(T7, T6, 0);
    // S-box 1 term.
    a.srli(T6, T5, 16);
    a.and(T6, T6, S5);
    a.slli(T6, T6, 2);
    a.add(T6, S1, T6);
    a.ld4(T8, T6, (sbox_entries * 4) as i64);
    a.add(T7, T7, T8);
    // S-box 2 term.
    a.srli(T6, T5, 8);
    a.and(T6, T6, S5);
    a.slli(T6, T6, 2);
    a.add(T6, S1, T6);
    a.ld4(T8, T6, (sbox_entries * 8) as i64);
    // S-box 3 term.
    a.and(T6, T5, S5);
    a.slli(T6, T6, 2);
    a.add(T6, S1, T6);
    a.ld4(T9, T6, (sbox_entries * 12) as i64);
    a.add(T8, T8, T9);
    a.xor(T7, T7, T8); // F value
    // Feistel swap: (L, R) = (R, L ^ F)
    a.xor(T7, T2, T7);
    a.mov(T2, T3);
    a.mov(T3, T7);
    a.addi(T4, T4, 1);
    a.blt(T4, S4, r_loop);
    a.st4(T2, T1, 0);
    a.st4(T3, T1, 4);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, b_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_random(vm.mem_mut(), DATA_BASE, blocks * 8);
    g.fill_u32_below(vm.mem_mut(), DATA2_BASE, sbox_entries * 4, 1 << 32);
    g.fill_u32_below(vm.mem_mut(), DATA3_BASE, rounds, 1 << 32);
    Ok(vm)
}

/// A SHA-1-style compression loop: 64-byte chunks, 80 expand+mix rounds of
/// rotates, adds and boolean functions. Models MiBench sha and the hashing
/// phase of pgp.
pub(crate) fn sha(bytes: u64, seed: u64) -> Result<Vm, AsmError> {
    let chunks = (bytes / 64).max(1);
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // message
    a.li(S1, chunks as i64);
    a.li(S2, 0x6745_2301); // h0 (a)
    a.li(S3, 0xefcd_ab89u32 as i64); // h1 (b)
    a.li(S4, 0x98ba_dcfeu32 as i64); // h2 (c)
    a.li(S5, 0x1032_5476); // h3 (d)
    a.li(S6, 0xc3d2_e1f0u32 as i64); // h4 (e)
    a.li(S11, 0xffff_ffff);
    let outer = a.label();
    a.bind(outer);
    let (c_loop, r_loop) = (a.label(), a.label());
    a.li(T0, 0); // chunk
    a.bind(c_loop);
    a.slli(S7, T0, 6);
    a.add(S7, S0, S7); // chunk base
    a.li(T1, 0); // round
    a.bind(r_loop);
    // w = word[round & 15] mixed with the round counter (schedule stand-in).
    a.andi(T2, T1, 15);
    a.slli(T2, T2, 2);
    a.add(T2, S7, T2);
    a.ld4(T3, T2, 0);
    a.xor(T3, T3, T1);
    // f = (b & c) | (~b & d) -- ch function
    a.and(T4, S3, S4);
    a.xor(T5, S3, S11); // ~b (32-bit)
    a.and(T5, T5, S5);
    a.or(T4, T4, T5);
    // temp = rotl5(a) + f + e + w + K
    a.slli(T6, S2, 5);
    a.srli(T7, S2, 27);
    a.or(T6, T6, T7);
    a.and(T6, T6, S11);
    a.add(T6, T6, T4);
    a.add(T6, T6, S6);
    a.add(T6, T6, T3);
    a.addi(T6, T6, 0x5a82);
    a.and(T6, T6, S11);
    // e=d, d=c, c=rotl30(b), b=a, a=temp
    a.mov(S6, S5);
    a.mov(S5, S4);
    a.slli(T7, S3, 30);
    a.srli(T8, S3, 2);
    a.or(T7, T7, T8);
    a.and(S4, T7, S11);
    a.mov(S3, S2);
    a.mov(S2, T6);
    a.addi(T1, T1, 1);
    a.slti(T9, T1, 80);
    a.bne(T9, ZERO, r_loop);
    a.addi(T0, T0, 1);
    a.blt(T0, S1, c_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_random(vm.mem_mut(), DATA_BASE, chunks * 64);
    Ok(vm)
}

/// Table-driven CRC32 over a byte stream (MiBench CRC32; also the checksum
/// inner loop of CommBench tcp).
pub(crate) fn crc32(bytes: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // data
    a.li(S1, DATA2_BASE as i64); // crc table (256 x u32)
    a.li(S2, bytes as i64);
    let outer = a.label();
    a.bind(outer);
    let i_loop = a.label();
    a.li(T0, 0);
    a.li(T1, 0xffff_ffff); // crc
    a.bind(i_loop);
    a.add(T2, S0, T0);
    a.ld1(T3, T2, 0);
    a.xor(T4, T1, T3);
    a.andi(T4, T4, 0xff);
    a.slli(T4, T4, 2);
    a.add(T4, S1, T4);
    a.ld4(T5, T4, 0);
    a.srli(T1, T1, 8);
    a.xor(T1, T1, T5);
    a.addi(T0, T0, 1);
    a.blt(T0, S2, i_loop);
    a.li(T6, (DATA3_BASE) as i64);
    a.st4(T1, T6, 0);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_repetitive(vm.mem_mut(), DATA_BASE, bytes, 64, 50);
    // Standard CRC-32 table.
    for i in 0..256u64 {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
        }
        vm.mem_mut().write_le(DATA2_BASE + i * 4, 4, c as u64);
    }
    Ok(vm)
}

/// Multi-word modular exponentiation by repeated square-and-multiply over
/// `words`-limb integers (schoolbook multiply + reduction by subtraction
/// stand-in). Models pgp's RSA and gap's bignum arithmetic.
pub(crate) fn modexp(words: u64, exp_bits: u64, seed: u64) -> Result<Vm, AsmError> {
    let words = words.max(2);
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // base (words limbs)
    a.li(S1, (DATA_BASE + words * 8) as i64); // accumulator
    a.li(S2, (DATA_BASE + 3 * words * 8) as i64); // product scratch (2w limbs)
    a.li(S3, words as i64);
    a.li(S4, exp_bits as i64);
    a.li(S5, DATA2_BASE as i64); // exponent bits (bytes)
    let outer = a.label();
    a.bind(outer);
    let bit_loop = a.label();
    a.li(S6, 0); // bit index
    a.bind(bit_loop);

    // product = acc * (bit ? base : acc)  (schoolbook, 2w-limb result)
    let (zero_loop, i_loop, j_loop, use_base, oper_done) =
        (a.label(), a.label(), a.label(), a.label(), a.label());
    // zero scratch
    a.li(T0, 0);
    a.slli(T9, S3, 1);
    a.bind(zero_loop);
    a.slli(T1, T0, 3);
    a.add(T1, S2, T1);
    a.st8(ZERO, T1, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, T9, zero_loop);
    // pick operand
    a.add(T0, S5, S6);
    a.ld1(T0, T0, 0);
    a.bne(T0, ZERO, use_base);
    a.mov(S7, S1);
    a.jmp(oper_done);
    a.bind(use_base);
    a.mov(S7, S0);
    a.bind(oper_done);
    // multiply: for i, for j: scratch[i+j] += acc[i] * oper[j] (low), and
    // scratch[i+j+1] += high
    a.li(T0, 0); // i
    a.bind(i_loop);
    a.slli(T1, T0, 3);
    a.add(T1, S1, T1);
    a.ld8(T2, T1, 0); // acc[i]
    a.li(T3, 0); // j
    a.bind(j_loop);
    a.slli(T4, T3, 3);
    a.add(T4, S7, T4);
    a.ld8(T5, T4, 0); // oper[j]
    a.mul(T6, T2, T5); // low
    a.mulh(T7, T2, T5); // high
    a.add(T8, T0, T3);
    a.slli(T8, T8, 3);
    a.add(T8, S2, T8);
    a.ld8(T9, T8, 0);
    a.add(T9, T9, T6);
    a.st8(T9, T8, 0);
    a.ld8(T9, T8, 8);
    a.add(T9, T9, T7);
    a.st8(T9, T8, 8);
    a.addi(T3, T3, 1);
    a.blt(T3, S3, j_loop);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, i_loop);
    // "Reduce": copy the low `words` limbs back into acc, xor-folding the
    // high half in (keeps magnitudes bounded; a stand-in for Montgomery
    // reduction with the same access pattern).
    let red_loop = a.label();
    a.li(T0, 0);
    a.bind(red_loop);
    a.slli(T1, T0, 3);
    a.add(T2, S2, T1);
    a.ld8(T3, T2, 0);
    a.slli(T4, S3, 3);
    a.add(T4, T2, T4);
    a.ld8(T5, T4, 0);
    a.xor(T3, T3, T5);
    a.ori(T3, T3, 1);
    a.add(T6, S1, T1);
    a.st8(T3, T6, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, red_loop);

    a.addi(S6, S6, 1);
    a.blt(S6, S4, bit_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_u64_below(vm.mem_mut(), DATA_BASE, words, u64::MAX);
    // acc starts at 1.
    vm.mem_mut().write_le(DATA_BASE + words * 8, 8, 1);
    for i in 1..words {
        vm.mem_mut().write_le(DATA_BASE + (words + i) * 8, 8, 0);
    }
    for i in 0..exp_bits {
        vm.mem_mut().write_u8(DATA2_BASE + i, (g.next_u64() & 1) as u8);
    }
    Ok(vm)
}

/// Reed-Solomon-style encoding over GF(256): per input block, multiply the
/// message through a generator using log/antilog tables (CommBench reed).
/// `nsym` is the number of parity symbols.
pub(crate) fn reed_solomon(blocks: u64, msg_len: u64, nsym: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // message blocks
    a.li(S1, DATA2_BASE as i64); // log table (256 B), antilog at +256
    a.li(S2, DATA3_BASE as i64); // parity output + generator at +4096
    a.li(S3, blocks as i64);
    a.li(S4, msg_len as i64);
    a.li(S5, nsym as i64);
    let outer = a.label();
    a.bind(outer);
    let (b_loop, zero_loop, m_loop, p_loop, skip_zero, p_next) =
        (a.label(), a.label(), a.label(), a.label(), a.label(), a.label());
    a.li(T0, 0); // block
    a.bind(b_loop);
    // zero parity
    a.li(T1, 0);
    a.bind(zero_loop);
    a.add(T2, S2, T1);
    a.st1(ZERO, T2, 0);
    a.addi(T1, T1, 1);
    a.blt(T1, S5, zero_loop);
    // LFSR-style division: for each message byte, feedback = msg ^ par[0];
    // shift parity; par[j] ^= gf_mul(gen[j], feedback) via log tables.
    a.mul(T1, T0, S4);
    a.add(S6, S0, T1); // message base
    a.li(T1, 0); // byte index
    a.bind(m_loop);
    a.add(T2, S6, T1);
    a.ld1(T3, T2, 0); // msg byte
    a.ld1(T4, S2, 0); // par[0]
    a.xor(T3, T3, T4); // feedback
    a.li(T5, 0); // j
    a.bind(p_loop);
    // shift: par[j] = par[j+1] (last becomes 0 implicitly via gen term)
    a.add(T6, S2, T5);
    a.ld1(T7, T6, 1);
    a.st1(T7, T6, 0);
    // gf_mul(gen[j], feedback): if either 0 -> 0 else antilog[(log[a]+log[b]) % 255]
    a.beq(T3, ZERO, skip_zero);
    a.addi(T8, T5, 4096);
    a.add(T8, S2, T8);
    a.ld1(T8, T8, 0); // gen[j]
    a.beq(T8, ZERO, p_next);
    a.add(T9, S1, T8);
    a.ld1(T9, T9, 0); // log[gen[j]]
    a.add(T8, S1, T3);
    a.ld1(T8, T8, 0); // log[feedback]
    a.add(T9, T9, T8);
    a.li(T8, 255);
    a.rem(T9, T9, T8);
    a.addi(T9, T9, 256);
    a.add(T9, S1, T9);
    a.ld1(T9, T9, 0); // antilog
    a.add(T6, S2, T5);
    a.ld1(T8, T6, 0);
    a.xor(T8, T8, T9);
    a.st1(T8, T6, 0);
    // Intentional jump-to-fallthrough (mica-lint warns): `skip_zero` binds
    // at the same pc as `p_next`, so this merge jump lands on the next
    // instruction; kept for the characterized control mix.
    a.jmp(p_next);
    a.bind(skip_zero);
    a.bind(p_next);
    a.addi(T5, T5, 1);
    a.blt(T5, S5, p_loop);
    a.addi(T1, T1, 1);
    a.blt(T1, S4, m_loop);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, b_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_random(vm.mem_mut(), DATA_BASE, blocks * msg_len);
    // GF(256) log/antilog tables for the 0x11d polynomial.
    let mut log = [0u8; 256];
    let mut alog = [0u8; 256];
    let mut x: u32 = 1;
    for (i, al) in alog.iter_mut().enumerate().take(255) {
        *al = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
    }
    for i in 0..256u64 {
        vm.mem_mut().write_u8(DATA2_BASE + i, log[i as usize]);
        vm.mem_mut().write_u8(DATA2_BASE + 256 + i, alog[(i % 255) as usize]);
    }
    // Generator coefficients (arbitrary nonzero bytes).
    for j in 0..nsym {
        vm.mem_mut().write_u8(DATA3_BASE + 4096 + j, (7 + j * 13 % 250) as u8 | 1);
    }
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use crate::kernels::test_support::mix_of;

    #[test]
    fn feistel_is_load_heavy_table_code() {
        let mix = mix_of(super::feistel(512, 16, 8, 1).unwrap(), 60_000);
        assert!(mix.loads > 0.15, "loads {}", mix.loads);
        assert!(mix.fp == 0.0);
    }

    #[test]
    fn sha_is_alu_dominated() {
        let mix = mix_of(super::sha(4096, 2).unwrap(), 60_000);
        assert!(mix.arith > 0.6, "arith {}", mix.arith);
        assert!(mix.loads < 0.1, "few memory ops: {}", mix.loads);
    }

    #[test]
    fn crc_alternates_loads_and_alu() {
        let mix = mix_of(super::crc32(65536, 3).unwrap(), 50_000);
        assert!(mix.loads > 0.15);
        assert!(mix.control > 0.05);
    }

    #[test]
    fn modexp_has_multiplies() {
        let mix = mix_of(super::modexp(8, 64, 4).unwrap(), 60_000);
        assert!(mix.int_mul > 0.02, "int_mul {}", mix.int_mul);
    }

    #[test]
    fn reed_solomon_runs_with_byte_tables() {
        let mix = mix_of(super::reed_solomon(64, 64, 16, 5).unwrap(), 60_000);
        assert!(mix.loads > 0.15);
        assert!(mix.stores > 0.03);
    }
}

//! Graph and pointer-structure kernels: Dijkstra shortest paths, radix-trie
//! lookups, network-simplex-style pointer chasing, and hash dictionaries.

use crate::data::DataGen;
use crate::{DATA2_BASE, DATA3_BASE, DATA_BASE};
use tinyisa::{regs::*, Asm, AsmError, Vm};

/// Dijkstra over a dense adjacency matrix without a heap (the MiBench
/// dijkstra implementation): repeated linear scans for the minimum-distance
/// unvisited node, then relaxation of its row.
pub(crate) fn dijkstra(nodes: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // adjacency (u32 weights, nodes x nodes)
    a.li(S1, DATA2_BASE as i64); // dist (u32)
    a.li(S2, (DATA2_BASE + nodes * 4) as i64); // visited (u8)
    a.li(S3, nodes as i64);
    let outer = a.label();
    a.bind(outer);
    // Reset dist = INF (except source), visited = 0.
    let reset = a.label();
    a.li(T0, 0);
    a.li(T9, 0x3fff_ffff);
    a.bind(reset);
    a.slli(T1, T0, 2);
    a.add(T1, S1, T1);
    a.st4(T9, T1, 0);
    a.add(T2, S2, T0);
    a.st1(ZERO, T2, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, reset);
    a.st4(ZERO, S1, 0); // dist[0] = 0

    let (round_loop, scan, scan_skip, relax, relax_skip, no_improve) =
        (a.label(), a.label(), a.label(), a.label(), a.label(), a.label());
    a.li(S4, 0); // round
    a.bind(round_loop);
    // Find unvisited minimum.
    a.li(T0, 0);
    a.li(T5, -1); // argmin
    a.li(T6, 0x7fff_ffff); // min
    a.bind(scan);
    a.add(T1, S2, T0);
    a.ld1(T2, T1, 0);
    a.bne(T2, ZERO, scan_skip);
    a.slli(T3, T0, 2);
    a.add(T3, S1, T3);
    a.ld4(T4, T3, 0);
    a.bge(T4, T6, scan_skip);
    a.mov(T6, T4);
    a.mov(T5, T0);
    a.bind(scan_skip);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, scan);
    // Mark visited; relax its row.
    a.add(T1, S2, T5);
    a.li(T2, 1);
    a.st1(T2, T1, 0);
    a.mul(S5, T5, S3); // row offset (elements)
    a.li(T0, 0);
    a.bind(relax);
    a.add(T1, S2, T0);
    a.ld1(T2, T1, 0);
    a.bne(T2, ZERO, relax_skip);
    a.add(T3, S5, T0);
    a.slli(T3, T3, 2);
    a.add(T3, S0, T3);
    a.ld4(T4, T3, 0); // weight
    a.add(T4, T4, T6); // candidate = min + w
    a.slli(T7, T0, 2);
    a.add(T7, S1, T7);
    a.ld4(T8, T7, 0);
    a.bge(T4, T8, no_improve);
    a.st4(T4, T7, 0);
    a.bind(no_improve);
    a.bind(relax_skip);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, relax);
    a.addi(S4, S4, 1);
    a.addi(T9, S3, -1);
    a.blt(S4, T9, round_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_u32_below(vm.mem_mut(), DATA_BASE, nodes * nodes, 1000);
    Ok(vm)
}

/// Patricia/radix-trie lookups (MiBench patricia, CommBench rtr route
/// lookup): walk a binary trie keyed by address bits for each query.
pub(crate) fn trie_lookup(keys: u64, queries: u64, depth: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // trie nodes: 24 bytes = left, right, value
    a.li(S1, DATA2_BASE as i64); // query keys (u32)
    a.li(S2, DATA3_BASE as i64); // result accumulator
    a.li(S3, queries as i64);
    a.li(S4, depth as i64);
    let outer = a.label();
    a.bind(outer);
    let (q_loop, walk, go_right, step_done, walk_end) =
        (a.label(), a.label(), a.label(), a.label(), a.label());
    a.li(T0, 0); // query index
    a.li(S6, 0); // checksum
    a.bind(q_loop);
    a.slli(T1, T0, 2);
    a.add(T1, S1, T1);
    a.ld4(T2, T1, 0); // key
    a.mov(T3, S0); // node = root
    a.li(T4, 0); // bit index
    a.bind(walk);
    a.srl(T5, T2, T4);
    a.andi(T5, T5, 1);
    a.bne(T5, ZERO, go_right);
    a.ld8(T6, T3, 0); // left
    a.jmp(step_done);
    a.bind(go_right);
    a.ld8(T6, T3, 8); // right
    a.bind(step_done);
    a.beq(T6, ZERO, walk_end);
    a.mov(T3, T6);
    a.addi(T4, T4, 1);
    a.blt(T4, S4, walk);
    a.bind(walk_end);
    a.ld8(T7, T3, 16); // stored value
    a.add(S6, S6, T7);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, q_loop);
    a.st8(S6, S2, 0);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    // Host-side trie construction over random keys.
    let node_bytes = 24u64;
    let mut next_free = 1u64; // node 0 is the root
    let mem = vm.mem_mut();
    for _ in 0..keys {
        let key = g.below(1 << 31);
        let mut node = 0u64;
        for bit in 0..depth {
            let side = (key >> bit) & 1;
            let slot = DATA_BASE + node * node_bytes + side * 8;
            let mut child = mem.read_le(slot, 8);
            if child == 0 {
                child = DATA_BASE + next_free * node_bytes;
                next_free += 1;
                mem.write_le(slot, 8, child);
            }
            node = (child - DATA_BASE) / node_bytes;
        }
        mem.write_le(DATA_BASE + node * node_bytes + 16, 8, key);
    }
    g.fill_u32_below(mem, DATA2_BASE, queries, 1 << 31);
    Ok(vm)
}

/// mcf-class pointer chasing with arithmetic: walk a randomly permuted ring
/// of fat nodes, relaxing a per-node potential against its neighbor —
/// dependent loads over a working set far larger than any cache.
pub(crate) fn pointer_chase(nodes: u64, node_bytes: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S1, nodes as i64);
    let outer = a.label();
    // S0 = current node pointer, loaded once from the head slot.
    a.li(T0, DATA2_BASE as i64);
    a.ld8(S0, T0, 0); // head pointer parked at DATA2_BASE
    a.bind(outer);
    let (chase, no_update) = (a.label(), a.label());
    a.li(T1, 0); // step
    a.bind(chase);
    a.ld8(T2, S0, 0); // next pointer (dependent load)
    a.ld8(T3, S0, 8); // potential
    a.ld8(T4, T2, 8); // neighbor potential
    a.ld8(T5, S0, 16); // cost
    a.add(T6, T4, T5);
    a.bge(T3, T6, no_update);
    a.st8(T6, S0, 8); // relax
    a.bind(no_update);
    a.mov(S0, T2);
    a.addi(T1, T1, 1);
    a.blt(T1, S1, chase);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    let head = g.build_random_ring(vm.mem_mut(), DATA3_BASE, nodes, node_bytes);
    // Potentials and costs.
    for n in 0..nodes {
        let base = DATA3_BASE + n * node_bytes;
        vm.mem_mut().write_le(base + 8, 8, g.below(1000));
        vm.mem_mut().write_le(base + 16, 8, g.below(50));
    }
    vm.mem_mut().write_le(DATA2_BASE, 8, head);
    Ok(vm)
}

/// Hash-dictionary probing (ispell, vortex's OO-database lookups, the
/// symbol tables of gcc/perlbmk): open-addressed probes with string-ish
/// key compares; `hit_rate` is the per-mille fraction of present keys.
pub(crate) fn hash_dict(entries: u64, queries: u64, hit_rate: u64, seed: u64) -> Result<Vm, AsmError> {
    let buckets = (entries * 2).next_power_of_two();
    let slot_bytes = 16u64; // key u64 + value u64 (0 = empty)
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // table
    a.li(S1, DATA2_BASE as i64); // query keys (u64)
    a.li(S2, queries as i64);
    a.li(S3, (buckets - 1) as i64);
    let outer = a.label();
    a.bind(outer);
    let (q_loop, probe, found, next_q) = (a.label(), a.label(), a.label(), a.label());
    a.li(T0, 0);
    a.li(S6, 0); // hits
    a.bind(q_loop);
    a.slli(T1, T0, 3);
    a.add(T1, S1, T1);
    a.ld8(T2, T1, 0); // key
    // hash = key * golden >> 13
    a.li(T3, 0x9e37_79b9_7f4a_7c15u64 as i64);
    a.mul(T4, T2, T3);
    a.srli(T4, T4, 13);
    a.and(T4, T4, S3); // bucket
    a.bind(probe);
    a.slli(T5, T4, 4);
    a.add(T5, S0, T5);
    a.ld8(T6, T5, 0); // slot key
    a.beq(T6, T2, found);
    a.beq(T6, ZERO, next_q); // empty slot: miss
    a.addi(T4, T4, 1);
    a.and(T4, T4, S3);
    a.jmp(probe);
    a.bind(found);
    a.ld8(T7, T5, 8);
    a.add(S6, S6, T7);
    a.bind(next_q);
    a.addi(T0, T0, 1);
    a.blt(T0, S2, q_loop);
    a.li(T8, DATA3_BASE as i64);
    a.st8(S6, T8, 0);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    // Insert `entries` keys host-side with the same probe function.
    let mut keys = Vec::with_capacity(entries as usize);
    let mem = vm.mem_mut();
    for _ in 0..entries {
        let key = g.next_u64() | 1; // nonzero
        keys.push(key);
        let mut b = (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 13) & (buckets - 1);
        loop {
            let addr = DATA_BASE + b * slot_bytes;
            if mem.read_le(addr, 8) == 0 {
                mem.write_le(addr, 8, key);
                mem.write_le(addr + 8, 8, key & 0xffff);
                break;
            }
            b = (b + 1) & (buckets - 1);
        }
    }
    for q in 0..queries {
        let key = if g.below(1000) < hit_rate {
            keys[g.below(entries) as usize]
        } else {
            g.next_u64() | 1
        };
        mem.write_le(DATA2_BASE + q * 8, 8, key);
    }
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use crate::kernels::test_support::mix_of;

    #[test]
    fn dijkstra_scans_and_branches() {
        let mix = mix_of(super::dijkstra(96, 1).unwrap(), 80_000);
        assert!(mix.control > 0.15, "control {}", mix.control);
        assert!(mix.loads > 0.15);
    }

    #[test]
    fn trie_walk_is_dependent_loads() {
        let mix = mix_of(super::trie_lookup(2048, 4096, 20, 2).unwrap(), 60_000);
        assert!(mix.loads > 0.1, "loads {}", mix.loads);
        assert!(mix.control > 0.15);
    }

    #[test]
    fn pointer_chase_is_load_bound() {
        let mix = mix_of(super::pointer_chase(1 << 14, 64, 3).unwrap(), 60_000);
        assert!(mix.loads > 0.3, "loads {}", mix.loads);
    }

    #[test]
    fn hash_dict_probes() {
        let mix = mix_of(super::hash_dict(4096, 8192, 700, 4).unwrap(), 60_000);
        assert!(mix.loads > 0.15);
        assert!(mix.int_mul > 0.02, "hash multiply: {}", mix.int_mul);
    }

    #[test]
    fn str_search_is_comparison_heavy() {
        let mix = mix_of(super::str_search(1 << 16, 8, 12, 20, 9).unwrap(), 60_000);
        assert!(mix.loads > 0.2, "loads {}", mix.loads);
        assert!(mix.control > 0.1, "control {}", mix.control);
    }

}

/// Boyer-Moore-Horspool substring search of many patterns over a large
/// text: skip-table lookups, backward compare loops, data-dependent
/// shifts (fasta's word-search phase; grep-class scanning generally).
pub(crate) fn str_search(
    text_bytes: u64,
    patterns: u64,
    pat_len: u64,
    alphabet: u8,
    seed: u64,
) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // text
    a.li(S1, DATA2_BASE as i64); // patterns (pat_len bytes each)
    a.li(S2, (DATA2_BASE + patterns * pat_len) as i64); // skip tables (256 B each)
    a.li(S3, (text_bytes - pat_len) as i64);
    a.li(S4, patterns as i64);
    a.li(S5, pat_len as i64);
    a.li(S6, DATA3_BASE as i64); // match counter
    let outer = a.label();
    a.bind(outer);
    let (p_loop, pos_loop, cmp_loop, mismatch, matched, advance) =
        (a.label(), a.label(), a.label(), a.label(), a.label(), a.label());
    a.li(T9, 0); // pattern index
    a.bind(p_loop);
    a.mul(T0, T9, S5);
    a.add(T0, S1, T0); // pattern base -> S8
    a.mov(S8, T0);
    a.slli(T0, T9, 8);
    a.add(T0, S2, T0); // skip table base -> S9
    a.mov(S9, T0);
    a.li(T1, 0); // text position
    a.bind(pos_loop);
    // Compare backwards from the end of the window.
    a.addi(T2, S5, -1); // k
    a.bind(cmp_loop);
    a.add(T3, T1, T2);
    a.add(T3, S0, T3);
    a.ld1(T4, T3, 0);
    a.add(T5, S8, T2);
    a.ld1(T6, T5, 0);
    a.bne(T4, T6, mismatch);
    a.beq(T2, ZERO, matched);
    a.addi(T2, T2, -1);
    a.jmp(cmp_loop);
    a.bind(matched);
    a.ld8(T7, S6, 0);
    a.addi(T7, T7, 1);
    a.st8(T7, S6, 0);
    a.addi(T1, T1, 1);
    a.jmp(advance);
    a.bind(mismatch);
    // Horspool shift: skip[text[pos + m - 1]].
    a.add(T3, T1, S5);
    a.addi(T3, T3, -1);
    a.add(T3, S0, T3);
    a.ld1(T4, T3, 0);
    a.add(T4, S9, T4);
    a.ld1(T5, T4, 0);
    a.add(T1, T1, T5);
    a.bind(advance);
    a.blt(T1, S3, pos_loop);
    a.addi(T9, T9, 1);
    a.blt(T9, S4, p_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    g.fill_alphabet(vm.mem_mut(), DATA_BASE, text_bytes, alphabet);
    for p in 0..patterns {
        let pat_base = DATA2_BASE + p * pat_len;
        // Half the patterns are sampled from the text (guaranteed hits).
        if p % 2 == 0 {
            let pos = g.below(text_bytes - pat_len);
            for k in 0..pat_len {
                let b = vm.mem().read_u8(DATA_BASE + pos + k);
                vm.mem_mut().write_u8(pat_base + k, b);
            }
        } else {
            g.fill_alphabet(vm.mem_mut(), pat_base, pat_len, alphabet);
        }
        // Horspool skip table.
        let table = DATA2_BASE + patterns * pat_len + p * 256;
        for c in 0..256u64 {
            vm.mem_mut().write_u8(table + c, pat_len as u8);
        }
        for k in 0..pat_len - 1 {
            let b = vm.mem().read_u8(pat_base + k);
            vm.mem_mut().write_u8(table + b as u64, (pat_len - 1 - k) as u8);
        }
    }
    Ok(vm)
}

//! Compression kernels: hash-chain LZ77 compression, LZ decompression, and
//! a BWT-style block transform (counting sort + move-to-front + RLE).

use crate::data::DataGen;
use crate::{DATA2_BASE, DATA3_BASE, DATA_BASE};
use tinyisa::{regs::*, Asm, AsmError, Memory, Vm};

/// Fill an input buffer whose compressibility is controlled by `entropy`
/// (0 = maximally repetitive, 100 = uniform random) — used to mirror the
/// gzip/bzip2 input variants (graphic, log, program, random, source).
fn fill_input(g: &mut DataGen, mem: &mut Memory, base: u64, len: u64, entropy: u64) {
    match entropy {
        0..=20 => g.fill_repetitive(mem, base, len, 24, entropy * 10),
        21..=50 => g.fill_repetitive(mem, base, len, 96, 200 + entropy * 5),
        51..=80 => g.fill_alphabet(mem, base, len, 64),
        _ => g.fill_random(mem, base, len),
    }
}

/// gzip/zip-class LZ77 compression: hash the next 3 bytes, probe a chain
/// table for a previous occurrence, extend the match, emit a token.
pub(crate) fn lz_compress(bytes: u64, window: u64, entropy: u64, seed: u64) -> Result<Vm, AsmError> {
    let hash_entries: u64 = 1 << 13;
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // input
    a.li(S1, DATA2_BASE as i64); // hash table (u32 positions)
    a.li(S2, DATA3_BASE as i64); // token output
    a.li(S3, (bytes - 16) as i64); // scan limit
    a.li(S4, (hash_entries - 1) as i64);
    a.li(S5, window as i64);
    let outer = a.label();
    a.bind(outer);
    // Reset the hash table at the start of each pass (stores sweep).
    let clear_loop = a.label();
    a.li(T0, 0);
    a.bind(clear_loop);
    a.slli(T1, T0, 2);
    a.add(T1, S1, T1);
    a.st4(ZERO, T1, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S4, clear_loop);
    a.li(S6, 0); // output cursor
    let pos_loop = a.label();
    a.li(T0, 1); // position (0 means "empty" in the table)
    a.bind(pos_loop);
    // h = (b0*131 ^ b1*31 ^ b2) & mask
    a.add(T1, S0, T0);
    a.ld1(T2, T1, 0);
    a.ld1(T3, T1, 1);
    a.ld1(T4, T1, 2);
    a.li(T5, 131);
    a.mul(T2, T2, T5);
    a.slli(T3, T3, 5);
    a.xor(T2, T2, T3);
    a.xor(T2, T2, T4);
    a.and(T2, T2, S4);
    a.slli(T2, T2, 2);
    a.add(T2, S1, T2);
    a.ld4(T3, T2, 0); // candidate position
    a.st4(T0, T2, 0); // update table
    let (no_match, emit_done, match_loop, match_end) =
        (a.label(), a.label(), a.label(), a.label());
    a.beq(T3, ZERO, no_match);
    // Too far back?
    a.sub(T4, T0, T3);
    a.bge(T4, S5, no_match);
    // Extend match up to 16 bytes.
    a.li(T5, 0); // match length
    a.bind(match_loop);
    a.add(T6, S0, T3);
    a.add(T6, T6, T5);
    a.ld1(T7, T6, 0);
    a.add(T6, S0, T0);
    a.add(T6, T6, T5);
    a.ld1(T8, T6, 0);
    a.bne(T7, T8, match_end);
    a.addi(T5, T5, 1);
    a.slti(T9, T5, 16);
    a.bne(T9, ZERO, match_loop);
    a.bind(match_end);
    a.slti(T9, T5, 3);
    a.bne(T9, ZERO, no_match);
    // Emit (offset, len) token: 4 bytes offset + 1 byte len.
    a.add(T6, S2, S6);
    a.st4(T4, T6, 0);
    a.st1(T5, T6, 4);
    a.addi(S6, S6, 5);
    a.add(T0, T0, T5); // skip matched bytes
    a.jmp(emit_done);
    a.bind(no_match);
    // Emit literal.
    a.add(T6, S0, T0);
    a.ld1(T7, T6, 0);
    a.add(T6, S2, S6);
    a.st1(T7, T6, 0);
    a.addi(S6, S6, 1);
    a.addi(T0, T0, 1);
    a.bind(emit_done);
    a.blt(T0, S3, pos_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    fill_input(&mut g, vm.mem_mut(), DATA_BASE, bytes, entropy);
    Ok(vm)
}

/// LZ77 decompression of a host-compressed token stream: short branchy
/// loop of copies — the gzip/zip "decode" sides.
pub(crate) fn lz_decompress(bytes: u64, entropy: u64, seed: u64) -> Result<Vm, AsmError> {
    // Host-side: generate data, LZ-compress it into (tag, payload) tokens.
    // Tag byte 0 = literal (1 byte follows), 1 = match (u16 offset, u8 len).
    let mut g = DataGen::new(seed);
    let mut scratch = Memory::new();
    fill_input(&mut g, &mut scratch, 0, bytes, entropy);
    let data = scratch.read_bytes(0, bytes as usize);
    let mut tokens: Vec<u8> = Vec::new();
    let mut pos = 0usize;
    while pos < data.len() {
        // Look back up to 4096 for a match of >= 4.
        let start = pos.saturating_sub(4096);
        let mut best = (0usize, 0usize);
        let mut cand = start;
        while cand + 8 < pos {
            let mut l = 0;
            while l < 255 && pos + l < data.len() && data[cand + l] == data[pos + l] {
                l += 1;
            }
            if l > best.1 {
                best = (pos - cand, l);
            }
            cand += 67; // sparse probing keeps host-side cost linear
        }
        if best.1 >= 4 {
            tokens.push(1);
            tokens.extend_from_slice(&(best.0 as u16).to_le_bytes());
            tokens.push(best.1 as u8);
            pos += best.1;
        } else {
            tokens.push(0);
            tokens.push(data[pos]);
            pos += 1;
        }
    }

    let token_len = tokens.len() as u64;
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // token stream
    a.li(S1, DATA2_BASE as i64); // output buffer
    a.li(S2, token_len as i64);
    let outer = a.label();
    a.bind(outer);
    let (t_loop, literal, done_tok, copy_loop) = (a.label(), a.label(), a.label(), a.label());
    a.li(T0, 0); // input cursor
    a.li(T1, 0); // output cursor
    a.bind(t_loop);
    a.add(T2, S0, T0);
    a.ld1(T3, T2, 0); // tag
    a.beq(T3, ZERO, literal);
    // Match: offset u16 at +1, len u8 at +3.
    a.ld2(T4, T2, 1);
    a.ld1(T5, T2, 3);
    a.addi(T0, T0, 4);
    a.sub(T6, T1, T4); // source cursor
    a.bind(copy_loop);
    a.add(T7, S1, T6);
    a.ld1(T8, T7, 0);
    a.add(T7, S1, T1);
    a.st1(T8, T7, 0);
    a.addi(T6, T6, 1);
    a.addi(T1, T1, 1);
    a.addi(T5, T5, -1);
    a.bne(T5, ZERO, copy_loop);
    a.jmp(done_tok);
    a.bind(literal);
    a.ld1(T4, T2, 1);
    a.addi(T0, T0, 2);
    a.add(T7, S1, T1);
    a.st1(T4, T7, 0);
    a.addi(T1, T1, 1);
    a.bind(done_tok);
    a.blt(T0, S2, t_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    vm.mem_mut().write_bytes(DATA_BASE, &tokens);
    Ok(vm)
}

/// bzip2-flavored block transform: per block, a two-pass counting sort of
/// leading bytes (histogram + scatter), a move-to-front pass over the sorted
/// permutation, and run-length counting. Captures bzip2's sort-dominated,
/// large-working-set behavior.
pub(crate) fn bwtish(block: u64, entropy: u64, seed: u64) -> Result<Vm, AsmError> {
    let mut a = Asm::new();
    a.li(S0, DATA_BASE as i64); // input block
    a.li(S1, DATA2_BASE as i64); // histogram (256 x u32)
    a.li(S2, DATA3_BASE as i64); // sorted index output (u32)
    a.li(S3, (block - 1) as i64);
    a.li(S4, (DATA3_BASE + block * 4 + 4096) as i64); // MTF list (256 B)
    let outer = a.label();
    a.bind(outer);
    // Zero the histogram.
    let (hz, hcount, hprefix, hscatter) = (a.label(), a.label(), a.label(), a.label());
    a.li(T0, 0);
    a.li(T9, 256);
    a.bind(hz);
    a.slli(T1, T0, 2);
    a.add(T1, S1, T1);
    a.st4(ZERO, T1, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, T9, hz);
    // Count bigrams.
    a.li(T0, 0);
    a.bind(hcount);
    a.add(T1, S0, T0);
    a.ld1(T2, T1, 0);
    a.slli(T2, T2, 2);
    a.add(T2, S1, T2);
    a.ld4(T4, T2, 0);
    a.addi(T4, T4, 1);
    a.st4(T4, T2, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, hcount);
    // Prefix sum.
    a.li(T0, 0);
    a.li(T5, 0); // running total
    a.bind(hprefix);
    a.slli(T1, T0, 2);
    a.add(T1, S1, T1);
    a.ld4(T4, T1, 0);
    a.st4(T5, T1, 0);
    a.add(T5, T5, T4);
    a.addi(T0, T0, 1);
    a.blt(T0, T9, hprefix);
    // Scatter positions into sorted order.
    a.li(T0, 0);
    a.bind(hscatter);
    a.add(T1, S0, T0);
    a.ld1(T2, T1, 0);
    a.slli(T2, T2, 2);
    a.add(T2, S1, T2);
    a.ld4(T4, T2, 0); // slot
    a.addi(T5, T4, 1);
    a.st4(T5, T2, 0);
    a.slli(T4, T4, 2);
    a.add(T4, S2, T4);
    a.st4(T0, T4, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, hscatter);
    // MTF over the byte at each sorted position (linear list search).
    let (mtf_init, mtf_loop, find_loop, found, shift_loop, shift_done) =
        (a.label(), a.label(), a.label(), a.label(), a.label(), a.label());
    a.li(T0, 0);
    a.li(T9, 256);
    a.bind(mtf_init);
    a.add(T1, S4, T0);
    a.st1(T0, T1, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, T9, mtf_init);
    a.li(T0, 0);
    a.bind(mtf_loop);
    a.slli(T1, T0, 2);
    a.add(T1, S2, T1);
    a.ld4(T2, T1, 0); // original index
    a.add(T2, S0, T2);
    a.ld1(T3, T2, 0); // byte value
    // find rank of T3 in MTF list
    a.li(T4, 0);
    a.bind(find_loop);
    a.add(T5, S4, T4);
    a.ld1(T6, T5, 0);
    a.beq(T6, T3, found);
    a.addi(T4, T4, 1);
    a.blt(T4, T9, find_loop);
    a.bind(found);
    // shift list [0, rank) right by one, put byte at front
    a.mov(T5, T4);
    a.bind(shift_loop);
    a.beq(T5, ZERO, shift_done);
    a.add(T6, S4, T5);
    a.ld1(T7, T6, -1);
    a.st1(T7, T6, 0);
    a.addi(T5, T5, -1);
    a.jmp(shift_loop);
    a.bind(shift_done);
    a.st1(T3, S4, 0);
    a.addi(T0, T0, 1);
    a.blt(T0, S3, mtf_loop);
    a.jmp(outer);

    let mut vm = Vm::new(a.assemble()?);
    let mut g = DataGen::new(seed);
    fill_input(&mut g, vm.mem_mut(), DATA_BASE, block, entropy);
    Ok(vm)
}

#[cfg(test)]
mod tests {
    use crate::kernels::test_support::mix_of;

    #[test]
    fn lz_compress_is_branchy_with_loads() {
        let mix = mix_of(super::lz_compress(1 << 16, 4096, 30, 1).unwrap(), 80_000);
        assert!(mix.control > 0.1, "control {}", mix.control);
        assert!(mix.loads > 0.08, "loads {}", mix.loads);
    }

    #[test]
    fn lz_entropy_changes_behavior() {
        let low = mix_of(super::lz_compress(1 << 15, 4096, 5, 1).unwrap(), 60_000);
        let high = mix_of(super::lz_compress(1 << 15, 4096, 95, 1).unwrap(), 60_000);
        // Random input finds fewer matches -> different store (token) rate.
        assert!(
            (low.stores - high.stores).abs() > 0.005,
            "low {} vs high {}",
            low.stores,
            high.stores
        );
    }

    #[test]
    fn lz_decompress_runs() {
        let mix = mix_of(super::lz_decompress(1 << 14, 10, 2).unwrap(), 50_000);
        assert!(mix.stores > 0.1, "copy loop stores: {}", mix.stores);
    }

    #[test]
    fn bwtish_touches_large_histogram() {
        let mix = mix_of(super::bwtish(1 << 14, 60, 3).unwrap(), 100_000);
        assert!(mix.stores > 0.1);
        assert!(mix.loads > 0.1);
    }
}

//! Seeded data-segment generators.
//!
//! Kernel inputs (sequences, images, packet traces, sparse matrices, ...)
//! are synthesized deterministically from a seed, so every profiling run of
//! a benchmark instance sees bit-identical data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tinyisa::Memory;

/// A deterministic generator writing kernel inputs into VM memory.
#[derive(Debug)]
pub struct DataGen {
    rng: StdRng,
}

impl DataGen {
    /// Generator for `seed`.
    pub fn new(seed: u64) -> Self {
        DataGen { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.rng.gen_range(0..bound.max(1))
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Fill `[base, base+len)` with uniform random bytes (incompressible,
    /// high-entropy input — e.g. SPEC gzip's `random` input).
    pub fn fill_random(&mut self, mem: &mut Memory, base: u64, len: u64) {
        for i in 0..len {
            mem.write_u8(base + i, self.rng.gen());
        }
    }

    /// Fill with bytes drawn from a small alphabet (DNA- or protein-like
    /// sequences; also moderately compressible text stand-ins).
    pub fn fill_alphabet(&mut self, mem: &mut Memory, base: u64, len: u64, alphabet: u8) {
        let alphabet = alphabet.max(1);
        for i in 0..len {
            mem.write_u8(base + i, self.rng.gen_range(0..alphabet));
        }
    }

    /// Fill with repetitive, highly compressible data: random phrases of
    /// `phrase` bytes repeated with occasional mutations
    /// (`mutation_per_mille` per byte).
    pub fn fill_repetitive(
        &mut self,
        mem: &mut Memory,
        base: u64,
        len: u64,
        phrase: u64,
        mutation_per_mille: u64,
    ) {
        let phrase = phrase.max(1);
        let pattern: Vec<u8> = (0..phrase).map(|_| self.rng.gen_range(b'a'..=b'z')).collect();
        for i in 0..len {
            let mut b = pattern[(i % phrase) as usize];
            if self.rng.gen_range(0..1000u64) < mutation_per_mille {
                b = self.rng.gen_range(b'a'..=b'z');
            }
            mem.write_u8(base + i, b);
        }
    }

    /// Fill `count` doubles in `[-1, 1)` starting at `base`.
    pub fn fill_f64(&mut self, mem: &mut Memory, base: u64, count: u64) {
        for i in 0..count {
            mem.write_f64(base + i * 8, self.rng.gen_range(-1.0..1.0));
        }
    }

    /// Fill `count` little-endian `u32` values below `bound`.
    pub fn fill_u32_below(&mut self, mem: &mut Memory, base: u64, count: u64, bound: u64) {
        for i in 0..count {
            mem.write_le(base + i * 4, 4, self.below(bound));
        }
    }

    /// Fill `count` little-endian `u64` values below `bound`.
    pub fn fill_u64_below(&mut self, mem: &mut Memory, base: u64, count: u64, bound: u64) {
        for i in 0..count {
            mem.write_le(base + i * 8, 8, self.below(bound));
        }
    }

    /// Write a singly linked ring of `nodes` nodes of `node_bytes` each
    /// (first 8 bytes = pointer to next), in a random permutation order so
    /// traversal is cache-hostile. Returns the address of the first node.
    pub fn build_random_ring(
        &mut self,
        mem: &mut Memory,
        base: u64,
        nodes: u64,
        node_bytes: u64,
    ) -> u64 {
        assert!(nodes > 0, "ring needs at least one node");
        let node_bytes = node_bytes.max(8);
        let mut order: Vec<u64> = (0..nodes).collect();
        // Fisher-Yates shuffle.
        for i in (1..order.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for w in order.windows(2) {
            mem.write_le(base + w[0] * node_bytes, 8, base + w[1] * node_bytes);
        }
        mem.write_le(base + order[nodes as usize - 1] * node_bytes, 8, base + order[0] * node_bytes);
        base + order[0] * node_bytes
    }

    /// Grayscale-image-like data: smooth gradients plus noise, one byte per
    /// pixel, row-major `w x h`.
    pub fn fill_image(&mut self, mem: &mut Memory, base: u64, w: u64, h: u64) {
        for y in 0..h {
            for x in 0..w {
                let v = ((x * 255 / w.max(1)) + (y * 131 / h.max(1))) as i64
                    + self.rng.gen_range(-16i64..16);
                mem.write_u8(base + y * w + x, v.clamp(0, 255) as u8);
            }
        }
    }

    /// Audio-like data: a sum of two sine waves plus noise, 16-bit samples.
    pub fn fill_audio(&mut self, mem: &mut Memory, base: u64, samples: u64) {
        for i in 0..samples {
            let t = i as f64;
            let v = 8000.0 * (t * 0.05).sin()
                + 3000.0 * (t * 0.21).sin()
                + self.rng.gen_range(-500.0..500.0);
            mem.write_le(base + i * 2, 2, (v as i64 as u64) & 0xffff);
        }
    }
}

/// Precompute the FFT twiddle-factor table (`count` complex roots of unity)
/// used by the FFT kernel: `(cos(-2 pi k / n), sin(-2 pi k / n))` pairs.
pub fn write_twiddles(mem: &mut Memory, base: u64, n: u64) {
    for k in 0..n / 2 {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
        mem.write_f64(base + k * 16, ang.cos());
        mem.write_f64(base + k * 16 + 8, ang.sin());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut m1 = Memory::new();
        let mut m2 = Memory::new();
        DataGen::new(7).fill_random(&mut m1, 0x1000, 256);
        DataGen::new(7).fill_random(&mut m2, 0x1000, 256);
        assert_eq!(m1.read_bytes(0x1000, 256), m2.read_bytes(0x1000, 256));
    }

    #[test]
    fn alphabet_respects_bound() {
        let mut m = Memory::new();
        DataGen::new(1).fill_alphabet(&mut m, 0, 1000, 4);
        assert!(m.read_bytes(0, 1000).iter().all(|&b| b < 4));
    }

    #[test]
    fn repetitive_data_is_compressible() {
        let mut m = Memory::new();
        DataGen::new(2).fill_repetitive(&mut m, 0, 4096, 32, 10);
        let bytes = m.read_bytes(0, 4096);
        // Most positions repeat 32 bytes later.
        let repeats =
            bytes.windows(33).filter(|w| w[0] == w[32]).count() as f64 / (4096 - 32) as f64;
        assert!(repeats > 0.9, "repeat fraction {repeats}");
    }

    #[test]
    fn ring_visits_every_node_once() {
        let mut m = Memory::new();
        let base = 0x10_0000;
        let head = DataGen::new(3).build_random_ring(&mut m, base, 64, 16);
        let mut seen = std::collections::HashSet::new();
        let mut p = head;
        for _ in 0..64 {
            assert!(seen.insert(p), "cycle shorter than 64 nodes");
            p = m.read_le(p, 8);
        }
        assert_eq!(p, head, "ring closes");
    }

    #[test]
    fn twiddles_are_unit_magnitude() {
        let mut m = Memory::new();
        write_twiddles(&mut m, 0, 64);
        for k in 0..32 {
            let c = m.read_f64(k * 16);
            let s = m.read_f64(k * 16 + 8);
            assert!((c * c + s * s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn image_values_in_byte_range_with_gradient() {
        let mut m = Memory::new();
        DataGen::new(4).fill_image(&mut m, 0, 64, 64);
        let left: u64 = (0..64).map(|y| m.read_u8(y * 64) as u64).sum();
        let right: u64 = (0..64).map(|y| m.read_u8(y * 64 + 63) as u64).sum();
        assert!(right > left, "horizontal gradient present");
    }
}

//! The 122-benchmark table (the paper's Table I), with each benchmark
//! mapped onto a parameterized [`Kernel`].

use crate::kernels::{FilterKind, Kernel, SchedKind};
use tinyisa::{AsmError, Vm};

/// The six benchmark suites of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    BioInfoMark,
    BioMetricsWorkload,
    CommBench,
    MediaBench,
    MiBench,
    SpecCpu2000,
}

impl Suite {
    /// All suites, in Table I order.
    pub const ALL: [Suite; 6] = [
        Suite::BioInfoMark,
        Suite::BioMetricsWorkload,
        Suite::CommBench,
        Suite::MediaBench,
        Suite::MiBench,
        Suite::SpecCpu2000,
    ];
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::BioInfoMark => "BioInfoMark",
            Suite::BioMetricsWorkload => "BioMetricsWorkload",
            Suite::CommBench => "CommBench",
            Suite::MediaBench => "MediaBench",
            Suite::MiBench => "MiBench",
            Suite::SpecCpu2000 => "SPEC2000",
        };
        f.write_str(s)
    }
}

/// One benchmark instance: suite, program and input names as in Table I,
/// the paper's dynamic instruction count, and the kernel standing in for
/// the original binary.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Suite the benchmark belongs to.
    pub suite: Suite,
    /// Program name, exactly as in Table I.
    pub program: &'static str,
    /// Input name, exactly as in Table I.
    pub input: &'static str,
    /// The paper's dynamic instruction count for this run, in millions.
    pub paper_icount_millions: u64,
    /// The kernel (and parameters) this reproduction runs instead.
    pub kernel: Kernel,
}

impl BenchmarkSpec {
    /// `suite/program/input` identifier.
    pub fn name(&self) -> String {
        format!("{}/{}/{}", self.suite, self.program, self.input)
    }

    /// Deterministic per-benchmark data seed (FNV-1a over the name).
    pub fn seed(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.name().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Scaled dynamic-instruction budget for profiling this instance.
    ///
    /// Benchmarks keep their Table I *relative ordering* but are compressed
    /// logarithmically into a 150 K – 1.2 M instruction range so that all
    /// 122 can be profiled in minutes instead of machine-months. All
    /// characteristics are rates or converging distributions, so this
    /// preserves the behavioral signature (see DESIGN.md).
    pub fn instruction_budget(&self) -> u64 {
        let l = (self.paper_icount_millions.max(1) as f64).log10();
        (150_000.0 * (1.0 + l)) as u64
    }

    /// Assemble the kernel and initialize its data, ready to run.
    ///
    /// # Errors
    ///
    /// Propagates assembly failures from [`Kernel::build_vm`].
    pub fn build_vm(&self) -> Result<Vm, AsmError> {
        self.kernel.build_vm(self.seed())
    }
}

/// Number of benchmark instances (matches the paper).
pub const NUM_BENCHMARKS: usize = 122;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a fingerprint of the entire benchmark table: every benchmark's
/// name, paper instruction count, data seed, kernel parameterization (via
/// its `Debug` rendering), and the *assembled instruction stream* of the
/// kernel. Any edit to the table — reordering, re-parameterizing a kernel,
/// swapping an input — changes the value, and so does any edit to a kernel
/// builder that alters the emitted program, so profile caches keyed on it
/// cannot silently survive a change to what actually runs.
pub fn table_fingerprint() -> u64 {
    let mut h = fnv1a(0xcbf2_9ce4_8422_2325, b"mica-table-v2");
    for spec in benchmark_table() {
        h = fnv1a(h, spec.name().as_bytes());
        h = fnv1a(h, &spec.paper_icount_millions.to_le_bytes());
        h = fnv1a(h, &spec.seed().to_le_bytes());
        h = fnv1a(h, format!("{:?}", spec.kernel).as_bytes());
        let vm = spec.build_vm().expect("table kernels must assemble");
        h = fnv1a(h, &(vm.program().len() as u64).to_le_bytes());
        h = fnv1a(h, format!("{:?}", vm.program().insts()).as_bytes());
    }
    h
}

macro_rules! bench {
    ($suite:ident, $prog:expr, $input:expr, $icnt:expr, $kernel:expr) => {
        BenchmarkSpec {
            suite: Suite::$suite,
            program: $prog,
            input: $input,
            paper_icount_millions: $icnt,
            kernel: $kernel,
        }
    };
}

/// The full 122-benchmark table, in Table I order.
pub fn benchmark_table() -> Vec<BenchmarkSpec> {
    use FilterKind as FK;
    use Kernel as K;
    use SchedKind as SK;
    vec![
        // --- BioInfoMark (12) ---
        bench!(BioInfoMark, "blast", "protein", 81_092, K::DbScan { db_bytes: 8 << 20, word: 8 }),
        bench!(BioInfoMark, "ce", "ce", 4_816, K::DpAlign { m: 2048, band: 256, alphabet: 20 }),
        bench!(BioInfoMark, "clustalw", "clustalw", 884_859, K::DpAlign { m: 4096, band: 512, alphabet: 20 }),
        bench!(BioInfoMark, "fasta", "fasta34", 759_654, K::StrSearch { text_bytes: 1 << 20, patterns: 48, pat_len: 12, alphabet: 4 }),
        bench!(BioInfoMark, "glimmer", "004663", 26_610, K::MarkovScan { seq_bytes: 1 << 16, order: 8 }),
        bench!(BioInfoMark, "hmmer", "build", 321, K::Viterbi { states: 128, steps: 128 }),
        bench!(BioInfoMark, "hmmer", "calibrate", 43_048, K::Viterbi { states: 128, steps: 512 }),
        bench!(BioInfoMark, "hmmer", "search (artemia)", 47, K::Viterbi { states: 256, steps: 256 }),
        bench!(BioInfoMark, "hmmer", "search (sprot)", 1_785_862, K::Viterbi { states: 256, steps: 2048 }),
        bench!(BioInfoMark, "phylip", "dnapenny", 184_557, K::PhyloEval { leaves: 128, sites: 64 }),
        bench!(BioInfoMark, "phylip", "promlk", 557_514, K::PhyloEval { leaves: 64, sites: 256 }),
        bench!(BioInfoMark, "predator", "predator", 804_859, K::DpAlign { m: 1024, band: 64, alphabet: 20 }),
        // --- BioMetricsWorkload (8) ---
        bench!(BioMetricsWorkload, "csu", "Bayesian (project)", 403_313, K::Covariance { dims: 96, samples: 64 }),
        bench!(BioMetricsWorkload, "csu", "Bayesian (train)", 28_158, K::Covariance { dims: 128, samples: 128 }),
        bench!(BioMetricsWorkload, "csu", "PreprocessNormalize", 4_059, K::ImageFilter { w: 256, h: 256, kind: FK::Smooth }),
        bench!(BioMetricsWorkload, "csu", "SubspaceProject (LDA)", 6_054, K::Gemm { n: 96 }),
        bench!(BioMetricsWorkload, "csu", "SubspaceProject (PCA)", 6_098, K::Gemm { n: 112 }),
        bench!(BioMetricsWorkload, "csu", "SubspaceTrain (LDA)", 51_297, K::Covariance { dims: 160, samples: 96 }),
        bench!(BioMetricsWorkload, "csu", "SubspaceTrain (PCA)", 41_729, K::Gemm { n: 144 }),
        bench!(BioMetricsWorkload, "speak", "decode", 46_648, K::NnScan { neurons: 256, dims: 64 }),
        // --- CommBench (12) ---
        bench!(CommBench, "cast", "decode", 130, K::Feistel { blocks: 2048, rounds: 12, sbox_bits: 8 }),
        bench!(CommBench, "cast", "encode", 130, K::Feistel { blocks: 2048, rounds: 12, sbox_bits: 8 }),
        bench!(CommBench, "drr", "drr", 235, K::QueueSched { packets: 2048, kind: SK::Drr }),
        bench!(CommBench, "frag", "frag", 49, K::QueueSched { packets: 1024, kind: SK::Frag }),
        bench!(CommBench, "jpeg", "decode", 238, K::Dct8x8 { blocks: 128, quality: 12 }),
        bench!(CommBench, "jpeg", "encode", 339, K::Dct8x8 { blocks: 192, quality: 8 }),
        bench!(CommBench, "reed", "decode", 1_298, K::ReedSolomon { blocks: 96, msg_len: 64, nsym: 32 }),
        bench!(CommBench, "reed", "encode", 912, K::ReedSolomon { blocks: 128, msg_len: 64, nsym: 16 }),
        bench!(CommBench, "rtr", "rtr", 1_137, K::TrieLookup { keys: 16_384, queries: 8192, depth: 24 }),
        bench!(CommBench, "tcp", "tcp", 58, K::QueueSched { packets: 2048, kind: SK::Tcp }),
        bench!(CommBench, "zip", "decode", 50, K::LzDecompress { bytes: 1 << 16, entropy: 40 }),
        bench!(CommBench, "zip", "encode", 322, K::LzCompress { bytes: 1 << 16, window: 4096, entropy: 40 }),
        // --- MediaBench (12) ---
        bench!(MediaBench, "epic", "test1", 205, K::Wavelet { len: 1 << 14, levels: 8, inverse: false }),
        bench!(MediaBench, "epic", "test2", 2_296, K::Wavelet { len: 1 << 16, levels: 10, inverse: false }),
        bench!(MediaBench, "unepic", "test1", 35, K::Wavelet { len: 1 << 14, levels: 8, inverse: true }),
        bench!(MediaBench, "unepic", "test2", 876, K::Wavelet { len: 1 << 16, levels: 10, inverse: true }),
        bench!(MediaBench, "g721", "decode", 323, K::Adpcm { samples: 1 << 15, decode: true }),
        bench!(MediaBench, "g721", "encode", 343, K::Adpcm { samples: 1 << 15, decode: false }),
        bench!(MediaBench, "ghostscript", "gs", 868, K::Raster { size: 256, tris: 256, textured: false }),
        bench!(MediaBench, "mesa", "mipmap", 32, K::ImageFilter { w: 512, h: 512, kind: FK::Smooth }),
        bench!(MediaBench, "mesa", "osdemo", 10, K::Raster { size: 192, tris: 128, textured: true }),
        bench!(MediaBench, "mesa", "texgen", 86, K::Raster { size: 256, tris: 192, textured: true }),
        bench!(MediaBench, "mpeg2", "decode", 149, K::HuffmanDecode { symbols: 128, stream_bytes: 1 << 14 }),
        bench!(MediaBench, "mpeg2", "encode", 1_528, K::MotionEst { w: 128, h: 96, range: 4 }),
        // --- MiBench (30) ---
        bench!(MiBench, "CRC32", "large", 612, K::Crc32 { bytes: 1 << 18 }),
        bench!(MiBench, "FFT", "fft (large)", 237, K::Fft { log2n: 12 }),
        bench!(MiBench, "FFT", "fftinv (large)", 217, K::Fft { log2n: 12 }),
        bench!(MiBench, "adpcm", "rawcaudio", 758, K::Adpcm { samples: 1 << 16, decode: false }),
        bench!(MiBench, "adpcm", "rawdaudio", 639, K::Adpcm { samples: 1 << 16, decode: true }),
        bench!(MiBench, "basicmath", "large", 1_523, K::Basicmath { values: 4096 }),
        bench!(MiBench, "bitcount", "large", 681, K::Bitops { words: 8192 }),
        bench!(MiBench, "blowfish", "decode", 495, K::Feistel { blocks: 4096, rounds: 16, sbox_bits: 8 }),
        bench!(MiBench, "blowfish", "encode", 498, K::Feistel { blocks: 4096, rounds: 16, sbox_bits: 8 }),
        bench!(MiBench, "dijkstra", "large", 252, K::Dijkstra { nodes: 128 }),
        bench!(MiBench, "ghostscript", "large", 868, K::Raster { size: 224, tris: 192, textured: false }),
        bench!(MiBench, "ispell", "large", 1_027, K::HashDict { entries: 1 << 15, queries: 1 << 14, hit_rate: 800 }),
        bench!(MiBench, "jpeg", "cjpeg", 121, K::Dct8x8 { blocks: 160, quality: 10 }),
        bench!(MiBench, "jpeg", "djpeg", 24, K::Dct8x8 { blocks: 96, quality: 14 }),
        bench!(MiBench, "lame", "large", 1_199, K::Mdct { frames: 64, block: 256 }),
        bench!(MiBench, "mad", "large", 345, K::Fir { taps: 32, samples: 1 << 15 }),
        bench!(MiBench, "patricia", "large", 399, K::TrieLookup { keys: 8192, queries: 16_384, depth: 20 }),
        bench!(MiBench, "pgp", "decode", 111, K::ModExp { words: 16, exp_bits: 96 }),
        bench!(MiBench, "pgp", "encode", 48, K::ModExp { words: 8, exp_bits: 64 }),
        bench!(MiBench, "qsort", "large", 512, K::Qsort { elems: 1 << 14 }),
        bench!(MiBench, "rsynth", "say (large)", 775, K::Fir { taps: 48, samples: 24_576 }),
        bench!(MiBench, "sha", "large", 114, K::Sha { bytes: 1 << 16 }),
        bench!(MiBench, "susan", "corners (large)", 29, K::ImageFilter { w: 128, h: 128, kind: FK::Corners }),
        bench!(MiBench, "susan", "edges (large)", 73, K::ImageFilter { w: 192, h: 192, kind: FK::Edges }),
        bench!(MiBench, "susan", "smoothing (large)", 300, K::ImageFilter { w: 256, h: 256, kind: FK::Smooth }),
        bench!(MiBench, "tiff", "2bw", 143, K::ImageFilter { w: 320, h: 240, kind: FK::Convert }),
        bench!(MiBench, "tiff", "2rgba", 268, K::ImageFilter { w: 384, h: 288, kind: FK::Convert }),
        bench!(MiBench, "tiff", "dither", 1_228, K::ImageFilter { w: 320, h: 240, kind: FK::Dither }),
        bench!(MiBench, "tiff", "median", 763, K::ImageFilter { w: 256, h: 192, kind: FK::Median }),
        bench!(MiBench, "typeset", "lout", 609, K::TextLayout { words: 16_384, line_width: 72 }),
        // --- SPEC CPU2000 (48) ---
        bench!(SpecCpu2000, "ammp", "ref", 388_534, K::Spmv { rows: 16_384, nnz_per_row: 16 }),
        bench!(SpecCpu2000, "applu", "ref", 336_798, K::Stencil { w: 160, h: 160, iters: 4 }),
        bench!(SpecCpu2000, "apsi", "ref", 361_955, K::Stencil { w: 128, h: 128, iters: 6 }),
        bench!(SpecCpu2000, "art", "ref-110", 77_067, K::NnScan { neurons: 1024, dims: 128 }),
        bench!(SpecCpu2000, "art", "ref-470", 84_660, K::NnScan { neurons: 1024, dims: 160 }),
        bench!(SpecCpu2000, "bzip2", "graphic", 157_003, K::Bwtish { block: 1 << 16, entropy: 55 }),
        bench!(SpecCpu2000, "bzip2", "program", 136_389, K::Bwtish { block: 1 << 16, entropy: 25 }),
        bench!(SpecCpu2000, "bzip2", "source", 122_267, K::Bwtish { block: 1 << 16, entropy: 15 }),
        bench!(SpecCpu2000, "crafty", "ref", 194_311, K::Bitops { words: 1 << 15 }),
        bench!(SpecCpu2000, "eon", "cook", 100_552, K::Raytrace { spheres: 64, rays: 2048 }),
        bench!(SpecCpu2000, "eon", "kajiya", 131_268, K::Raytrace { spheres: 96, rays: 2048 }),
        bench!(SpecCpu2000, "eon", "rush", 73_139, K::Raytrace { spheres: 48, rays: 1024 }),
        bench!(SpecCpu2000, "equake", "ref", 158_071, K::Spmv { rows: 32_768, nnz_per_row: 24 }),
        bench!(SpecCpu2000, "facerec", "ref", 249_735, K::Fft { log2n: 14 }),
        bench!(SpecCpu2000, "fma3d", "ref", 312_960, K::Stencil { w: 192, h: 192, iters: 4 }),
        bench!(SpecCpu2000, "galgel", "ref", 326_916, K::LuSolve { n: 96 }),
        bench!(SpecCpu2000, "gap", "ref", 310_323, K::Interp { program_len: 8192 }),
        bench!(SpecCpu2000, "gcc", "166", 46_614, K::HashDict { entries: 1 << 16, queries: 1 << 14, hit_rate: 600 }),
        bench!(SpecCpu2000, "gcc", "200", 106_339, K::PointerChase { nodes: 1 << 15, node_bytes: 64 }),
        bench!(SpecCpu2000, "gcc", "expr", 11_847, K::Interp { program_len: 1 << 14 }),
        bench!(SpecCpu2000, "gcc", "integrate", 13_019, K::HashDict { entries: 1 << 14, queries: 1 << 13, hit_rate: 700 }),
        bench!(SpecCpu2000, "gcc", "scilab", 60_784, K::PointerChase { nodes: 1 << 14, node_bytes: 48 }),
        bench!(SpecCpu2000, "gzip", "graphic", 113_400, K::LzCompress { bytes: 1 << 17, window: 8192, entropy: 55 }),
        bench!(SpecCpu2000, "gzip", "log", 42_506, K::LzCompress { bytes: 1 << 17, window: 8192, entropy: 10 }),
        bench!(SpecCpu2000, "gzip", "program", 161_726, K::LzCompress { bytes: 1 << 17, window: 8192, entropy: 25 }),
        bench!(SpecCpu2000, "gzip", "random", 91_961, K::LzCompress { bytes: 1 << 17, window: 8192, entropy: 95 }),
        bench!(SpecCpu2000, "gzip", "source", 84_366, K::LzCompress { bytes: 1 << 17, window: 8192, entropy: 15 }),
        bench!(SpecCpu2000, "lucas", "ref", 134_753, K::Fft { log2n: 16 }),
        bench!(SpecCpu2000, "mcf", "ref", 59_800, K::PointerChase { nodes: 1 << 18, node_bytes: 64 }),
        bench!(SpecCpu2000, "mesa", "ref", 314_449, K::Raster { size: 320, tris: 256, textured: true }),
        bench!(SpecCpu2000, "mgrid", "ref", 440_934, K::Stencil { w: 256, h: 256, iters: 2 }),
        bench!(SpecCpu2000, "parser", "ref", 530_784, K::HashDict { entries: 1 << 15, queries: 1 << 14, hit_rate: 500 }),
        bench!(SpecCpu2000, "perlbmk", "splitmail.535", 69_857, K::Interp { program_len: 1 << 13 }),
        bench!(SpecCpu2000, "perlbmk", "splitmail.704", 73_966, K::Interp { program_len: 3 << 12 }),
        bench!(SpecCpu2000, "perlbmk", "splitmail.850", 142_509, K::Interp { program_len: 1 << 14 }),
        bench!(SpecCpu2000, "perlbmk", "splitmail.957", 122_893, K::Interp { program_len: 5 << 12 }),
        bench!(SpecCpu2000, "perlbmk", "diffmail", 43_327, K::Interp { program_len: 1 << 12 }),
        bench!(SpecCpu2000, "perlbmk", "makerand", 2_055, K::Interp { program_len: 1 << 11 }),
        bench!(SpecCpu2000, "perlbmk", "perfect", 29_791, K::Interp { program_len: 3 << 11 }),
        bench!(SpecCpu2000, "sixtrack", "ref", 452_446, K::Fir { taps: 256, samples: 1 << 14 }),
        bench!(SpecCpu2000, "swim", "ref", 221_868, K::Stencil { w: 384, h: 384, iters: 1 }),
        bench!(SpecCpu2000, "twolf", "ref", 397_222, K::Annealing { cells: 1 << 13, sweeps: 16, temp: 700 }),
        bench!(SpecCpu2000, "vortex", "ref1", 129_793, K::HashDict { entries: 1 << 16, queries: 1 << 15, hit_rate: 850 }),
        bench!(SpecCpu2000, "vortex", "ref2", 151_475, K::HashDict { entries: 1 << 16, queries: 1 << 15, hit_rate: 850 }),
        bench!(SpecCpu2000, "vortex", "ref3", 145_113, K::HashDict { entries: 1 << 15, queries: 1 << 14, hit_rate: 900 }),
        bench!(SpecCpu2000, "vpr", "place", 117_001, K::Annealing { cells: 1 << 12, sweeps: 24, temp: 300 }),
        bench!(SpecCpu2000, "vpr", "route", 82_351, K::Dijkstra { nodes: 192 }),
        bench!(SpecCpu2000, "wupwise", "ref", 337_770, K::Gemm { n: 192 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_122_entries() {
        assert_eq!(benchmark_table().len(), NUM_BENCHMARKS);
    }

    #[test]
    fn names_are_unique() {
        let table = benchmark_table();
        let mut names: Vec<String> = table.iter().map(|b| b.name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate benchmark names");
    }

    #[test]
    fn suite_sizes_match_table_i() {
        let table = benchmark_table();
        let count = |s: Suite| table.iter().filter(|b| b.suite == s).count();
        assert_eq!(count(Suite::BioInfoMark), 12);
        assert_eq!(count(Suite::BioMetricsWorkload), 8);
        assert_eq!(count(Suite::CommBench), 12);
        assert_eq!(count(Suite::MediaBench), 12);
        assert_eq!(count(Suite::MiBench), 30);
        assert_eq!(count(Suite::SpecCpu2000), 48);
    }

    #[test]
    fn seeds_are_distinct_per_benchmark() {
        let table = benchmark_table();
        let mut seeds: Vec<u64> = table.iter().map(|b| b.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), NUM_BENCHMARKS);
    }

    #[test]
    fn budgets_track_paper_instruction_counts() {
        let table = benchmark_table();
        let sprot = table.iter().find(|b| b.input == "search (sprot)").unwrap();
        let artemia = table.iter().find(|b| b.input == "search (artemia)").unwrap();
        assert!(sprot.instruction_budget() > artemia.instruction_budget());
        for b in &table {
            let budget = b.instruction_budget();
            assert!((150_000..=1_200_000).contains(&budget), "{}: {budget}", b.name());
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive_to_kernel_params() {
        assert_eq!(table_fingerprint(), table_fingerprint());
        assert_ne!(table_fingerprint(), 0);
        // The fingerprint covers kernel parameters, not just names: two
        // specs differing only in kernel parameterization hash apart.
        let a = BenchmarkSpec {
            suite: Suite::MiBench,
            program: "sha",
            input: "large",
            paper_icount_millions: 114,
            kernel: Kernel::Sha { bytes: 1 << 16 },
        };
        let mut b = a.clone();
        b.kernel = Kernel::Sha { bytes: 1 << 17 };
        assert_ne!(format!("{:?}", a.kernel), format!("{:?}", b.kernel));
    }

    #[test]
    fn every_benchmark_builds_and_runs() {
        for b in benchmark_table() {
            let mut vm = b.build_vm().unwrap_or_else(|e| panic!("{} fails: {e}", b.name()));
            let mut sink = tinyisa::CountingSink::default();
            let exit = vm
                .run(&mut sink, 5_000)
                .unwrap_or_else(|e| panic!("{} faults: {e}", b.name()));
            assert_eq!(exit, tinyisa::RunExit::FuelExhausted, "{} halted early", b.name());
        }
    }
}

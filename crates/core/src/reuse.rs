//! LRU stack (reuse) distance measurement.
//!
//! The reuse distance of a memory access is the number of *distinct* blocks
//! touched since the previous access to the same block — the classic
//! microarchitecture-independent locality metric (a block hits in any LRU
//! cache of capacity greater than its reuse distance). The released MICA
//! tool measures it as its `memreusedist` category; this module implements
//! it with the standard Mattson/Bennett-Kruskal algorithm: a Fenwick tree
//! over access timestamps gives O(log n) per access.

use std::collections::HashMap;
use tinyisa::{DynInst, TraceSink};

/// A Fenwick (binary indexed) tree over dynamic timestamps, supporting
/// point updates and suffix counts.
#[derive(Debug, Clone)]
pub(crate) struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    pub(crate) fn with_capacity(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    /// Number of indexed positions.
    pub(crate) fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Add `delta` at 0-based position `i`, growing if needed.
    pub(crate) fn add(&mut self, i: usize, delta: i64) {
        if i >= self.len() {
            let new_len = (i + 1).next_power_of_two().max(64);
            self.grow(new_len);
        }
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based, saturating at the end).
    pub(crate) fn prefix(&self, i: usize) -> u64 {
        let mut i = (i + 1).min(self.len());
        let mut s = 0u64;
        while i > 0 {
            s = s.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Total of all positions.
    pub(crate) fn total(&self) -> u64 {
        self.prefix(self.len().saturating_sub(1))
    }

    /// Rebuild into a larger tree, preserving contents.
    fn grow(&mut self, new_len: usize) {
        // Extract point values, then re-add into the bigger tree.
        let old_len = self.len();
        let mut vals = Vec::with_capacity(old_len);
        for i in 0..old_len {
            let v = self.prefix(i) - if i == 0 { 0 } else { self.prefix(i - 1) };
            vals.push(v);
        }
        self.tree = vec![0; new_len + 1];
        for (i, v) in vals.into_iter().enumerate() {
            if v != 0 {
                self.add(i, v as i64);
            }
        }
    }
}

/// Cumulative reuse-distance bucket limits (in distinct 32-byte blocks):
/// `P[distance < 2^k]` for cache-relevant powers of two, plus a cold-miss
/// fraction. Chosen to straddle L1 (256 blocks), L2 (thousands) and beyond.
pub const REUSE_BUCKETS: [u64; 6] = [16, 64, 256, 1024, 8192, 65536];

/// Measures the distribution of data reuse distances at 32-byte-block
/// granularity, in O(log n) per access.
#[derive(Debug, Clone)]
pub struct ReuseDistance {
    fenwick: Fenwick,
    /// Block -> timestamp of its most recent access.
    last_access: HashMap<u64, usize>,
    clock: usize,
    buckets: [u64; 6],
    accesses_with_reuse: u64,
    cold: u64,
}

const BLOCK_SHIFT: u64 = 5;

impl Default for ReuseDistance {
    fn default() -> Self {
        Self::new()
    }
}

impl ReuseDistance {
    /// Create an empty analyzer.
    pub fn new() -> Self {
        ReuseDistance {
            fenwick: Fenwick::with_capacity(1 << 16),
            last_access: HashMap::new(),
            clock: 0,
            buckets: [0; 6],
            accesses_with_reuse: 0,
            cold: 0,
        }
    }

    /// Record an access to the block containing `addr`; returns its reuse
    /// distance (`None` on first touch).
    pub fn access(&mut self, addr: u64) -> Option<u64> {
        let block = addr >> BLOCK_SHIFT;
        let now = self.clock;
        self.clock += 1;
        let dist = match self.last_access.insert(block, now) {
            Some(prev) => {
                // Distinct blocks touched after `prev`: total marks minus
                // marks at or before prev.
                let d = self.fenwick.total() - self.fenwick.prefix(prev);
                self.fenwick.add(prev, -1);
                Some(d)
            }
            None => {
                self.cold += 1;
                None
            }
        };
        self.fenwick.add(now, 1);
        if let Some(d) = dist {
            self.accesses_with_reuse += 1;
            for (b, &lim) in self.buckets.iter_mut().zip(&REUSE_BUCKETS) {
                if d < lim {
                    *b += 1;
                }
            }
        }
        dist
    }

    /// Fraction of accesses that were first touches (cold).
    pub fn cold_fraction(&self) -> f64 {
        let total = self.accesses_with_reuse + self.cold;
        if total == 0 {
            0.0
        } else {
            self.cold as f64 / total as f64
        }
    }

    /// `P[reuse distance < REUSE_BUCKETS[k]]` over reused accesses.
    pub fn cdf(&self) -> [f64; 6] {
        if self.accesses_with_reuse == 0 {
            return [0.0; 6];
        }
        let t = self.accesses_with_reuse as f64;
        let mut out = [0.0; 6];
        for (o, &c) in out.iter_mut().zip(&self.buckets) {
            *o = c as f64 / t;
        }
        out
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses_with_reuse + self.cold
    }
}

impl TraceSink for ReuseDistance {
    fn retire(&mut self, inst: &DynInst) {
        if let Some(m) = inst.mem {
            self.access(m.addr);
        }
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        // The LRU stack is mutated by every access, so reuse distance is
        // inherently sequential; the batch path only skims the memory
        // accesses out of the block in one pass.
        for inst in block {
            if let Some(m) = inst.mem {
                self.access(m.addr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::with_capacity(16);
        f.add(0, 3);
        f.add(5, 2);
        f.add(15, 1);
        assert_eq!(f.prefix(0), 3);
        assert_eq!(f.prefix(4), 3);
        assert_eq!(f.prefix(5), 5);
        assert_eq!(f.prefix(15), 6);
        assert_eq!(f.total(), 6);
        f.add(5, -2);
        assert_eq!(f.total(), 4);
    }

    #[test]
    fn fenwick_grows_transparently() {
        let mut f = Fenwick::with_capacity(4);
        f.add(2, 1);
        f.add(1000, 7);
        assert_eq!(f.prefix(2), 1);
        assert_eq!(f.prefix(1000), 8);
    }

    #[test]
    fn first_access_is_cold() {
        let mut r = ReuseDistance::new();
        assert_eq!(r.access(0x1000), None);
        assert_eq!(r.cold_fraction(), 1.0);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let mut r = ReuseDistance::new();
        r.access(0x1000);
        assert_eq!(r.access(0x1008), Some(0), "same 32B block, nothing in between");
    }

    #[test]
    fn distance_counts_distinct_intervening_blocks() {
        let mut r = ReuseDistance::new();
        r.access(0x0); // block A
        r.access(0x100); // B
        r.access(0x200); // C
        r.access(0x100); // B again: only C intervened
        assert_eq!(r.access(0x0), Some(2), "B and C intervened (B's re-touch counts once)");
    }

    #[test]
    fn repeated_touches_count_once() {
        let mut r = ReuseDistance::new();
        r.access(0x0); // A
        for _ in 0..10 {
            r.access(0x100); // B many times
        }
        assert_eq!(r.access(0x0), Some(1), "B counts once, not ten times");
    }

    #[test]
    fn streaming_has_no_reuse_and_loop_has_full_reuse() {
        let mut stream = ReuseDistance::new();
        for i in 0..1000u64 {
            stream.access(i * 64);
        }
        assert_eq!(stream.cold_fraction(), 1.0);

        let mut looped = ReuseDistance::new();
        for _ in 0..10 {
            for i in 0..32u64 {
                looped.access(i * 64);
            }
        }
        // After warmup every access has reuse distance 31 (< 64).
        let cdf = looped.cdf();
        assert_eq!(cdf[1], 1.0, "{cdf:?}");
        assert_eq!(cdf[0], 0.0, "distance 31 is not < 16: {cdf:?}");
    }

    #[test]
    fn cdf_is_monotone() {
        let mut r = ReuseDistance::new();
        let mut x = 7u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            r.access(x % (1 << 20));
        }
        let cdf = r.cdf();
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn matches_naive_oracle_on_random_trace() {
        use std::collections::HashSet;
        let mut r = ReuseDistance::new();
        let mut trace = Vec::new();
        let mut x = 3u64;
        for _ in 0..400 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            trace.push((x % 50) * 32);
        }
        for (i, &addr) in trace.iter().enumerate() {
            let fast = r.access(addr);
            // Naive oracle: distinct blocks since previous access to this
            // block.
            let block = addr >> 5;
            let prev = trace[..i].iter().rposition(|&a| a >> 5 == block);
            let naive = prev.map(|p| {
                trace[p + 1..i].iter().map(|&a| a >> 5).collect::<HashSet<_>>().len() as u64
            });
            assert_eq!(fast, naive, "at access {i}");
        }
    }
}

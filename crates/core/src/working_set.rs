//! Working-set-size characterization (metrics 20–23).

use std::collections::HashSet;
use tinyisa::{DynInst, TraceSink};

const BLOCK_SHIFT: u64 = 5; // 32-byte blocks
const PAGE_SHIFT: u64 = 12; // 4 KiB pages

/// Counts unique 32-byte blocks and 4 KiB pages touched by the instruction
/// and data streams (metrics 20–23 of Table II).
///
/// A data access that spans a block (or page) boundary touches both blocks
/// (pages).
#[derive(Debug, Default, Clone)]
pub struct WorkingSet {
    d_blocks: HashSet<u64>,
    d_pages: HashSet<u64>,
    i_blocks: HashSet<u64>,
    i_pages: HashSet<u64>,
    /// Batch-path scratch: candidate ids for the current block, deduped
    /// before they are hashed into the sets.
    scratch: Vec<u64>,
}

impl WorkingSet {
    /// Create an empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unique 32-byte data blocks touched.
    pub fn d_stream_blocks(&self) -> usize {
        self.d_blocks.len()
    }

    /// Unique 4 KiB data pages touched.
    pub fn d_stream_pages(&self) -> usize {
        self.d_pages.len()
    }

    /// Unique 32-byte instruction blocks touched.
    pub fn i_stream_blocks(&self) -> usize {
        self.i_blocks.len()
    }

    /// Unique 4 KiB instruction pages touched.
    pub fn i_stream_pages(&self) -> usize {
        self.i_pages.len()
    }

    /// The four metrics in Table II order: D-blocks, D-pages, I-blocks,
    /// I-pages.
    pub fn counts(&self) -> [f64; 4] {
        [
            self.d_blocks.len() as f64,
            self.d_pages.len() as f64,
            self.i_blocks.len() as f64,
            self.i_pages.len() as f64,
        ]
    }
}

/// Last byte touched by an access: saturates so accesses at the very top
/// of the address space stay in the last block/page instead of wrapping.
fn last_byte(addr: u64, size: u64) -> u64 {
    addr.saturating_add(size.max(1) - 1)
}

/// Dedup `scratch` (sort + dedup) and insert the distinct ids into `set`.
/// Sequential code repeats the same blocks and pages heavily, so paying
/// one sort over a small block-local vector is cheaper than hashing every
/// occurrence.
fn flush_ids(scratch: &mut Vec<u64>, set: &mut HashSet<u64>) {
    scratch.sort_unstable();
    scratch.dedup();
    for &id in scratch.iter() {
        set.insert(id);
    }
    scratch.clear();
}

impl TraceSink for WorkingSet {
    fn retire(&mut self, inst: &DynInst) {
        self.i_blocks.insert(inst.pc >> BLOCK_SHIFT);
        self.i_pages.insert(inst.pc >> PAGE_SHIFT);
        if let Some(m) = inst.mem {
            let last = last_byte(m.addr, m.size);
            for b in (m.addr >> BLOCK_SHIFT)..=(last >> BLOCK_SHIFT) {
                self.d_blocks.insert(b);
            }
            for p in (m.addr >> PAGE_SHIFT)..=(last >> PAGE_SHIFT) {
                self.d_pages.insert(p);
            }
        }
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        // Dedup-before-hash: collect ids into scratch, dropping adjacent
        // duplicates on the way in (instruction streams are runs of nearby
        // pcs), then sort+dedup and hash each distinct id once. Membership
        // of the sets is a pure union, so ordering does not matter.
        let mut scratch = std::mem::take(&mut self.scratch);

        for (shift, set) in
            [(BLOCK_SHIFT, &mut self.i_blocks), (PAGE_SHIFT, &mut self.i_pages)]
        {
            for inst in block {
                let id = inst.pc >> shift;
                if scratch.last() != Some(&id) {
                    scratch.push(id);
                }
            }
            flush_ids(&mut scratch, set);
        }

        for (shift, set) in
            [(BLOCK_SHIFT, &mut self.d_blocks), (PAGE_SHIFT, &mut self.d_pages)]
        {
            for inst in block {
                if let Some(m) = inst.mem {
                    let last = last_byte(m.addr, m.size);
                    for id in (m.addr >> shift)..=(last >> shift) {
                        if scratch.last() != Some(&id) {
                            scratch.push(id);
                        }
                    }
                }
            }
            flush_ids(&mut scratch, set);
        }

        self.scratch = scratch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{InstClass, MemAccess};

    fn mem_inst(pc: u64, addr: u64, size: u64) -> DynInst {
        DynInst {
            pc,
            class: InstClass::Load,
            dst: None,
            srcs: [None; 3],
            mem: Some(MemAccess { addr, size, is_store: false }),
            ctrl: None,
        }
    }

    fn plain_inst(pc: u64) -> DynInst {
        DynInst {
            pc,
            class: InstClass::IntAlu,
            dst: None,
            srcs: [None; 3],
            mem: None,
            ctrl: None,
        }
    }

    #[test]
    fn instruction_stream_blocks_and_pages() {
        let mut w = WorkingSet::new();
        // 16 instructions of 4 bytes: 64 bytes = 2 blocks, 1 page.
        for i in 0..16 {
            w.retire(&plain_inst(0x1_0000 + i * 4));
        }
        assert_eq!(w.i_stream_blocks(), 2);
        assert_eq!(w.i_stream_pages(), 1);
        assert_eq!(w.d_stream_blocks(), 0);
    }

    #[test]
    fn repeated_access_counts_once() {
        let mut w = WorkingSet::new();
        for _ in 0..100 {
            w.retire(&mem_inst(0x1000, 0x8000, 8));
        }
        assert_eq!(w.d_stream_blocks(), 1);
        assert_eq!(w.d_stream_pages(), 1);
    }

    #[test]
    fn block_spanning_access_touches_both_blocks() {
        let mut w = WorkingSet::new();
        w.retire(&mem_inst(0x1000, 0x801e, 8)); // crosses 0x8020 boundary
        assert_eq!(w.d_stream_blocks(), 2);
        assert_eq!(w.d_stream_pages(), 1);
    }

    #[test]
    fn page_spanning_access_touches_both_pages() {
        let mut w = WorkingSet::new();
        w.retire(&mem_inst(0x1000, 0x8ffc, 8)); // crosses 0x9000
        assert_eq!(w.d_stream_pages(), 2);
    }

    #[test]
    fn access_at_the_top_of_the_address_space_does_not_overflow() {
        // addr + size - 1 would wrap past u64::MAX (debug panic, release
        // wraparound into block 0); the last byte must saturate instead.
        let mut w = WorkingSet::new();
        w.retire(&mem_inst(0x1000, u64::MAX - 3, 8));
        assert_eq!(w.d_stream_blocks(), 1);
        assert_eq!(w.d_stream_pages(), 1);
        assert!(w.counts().iter().all(|c| c.is_finite()));
    }

    #[test]
    fn zero_sized_access_touches_one_block() {
        let mut w = WorkingSet::new();
        w.retire(&mem_inst(0x1000, 0x8000, 0));
        assert_eq!(w.d_stream_blocks(), 1);
    }

    #[test]
    fn distinct_pages_accumulate() {
        let mut w = WorkingSet::new();
        for p in 0..10u64 {
            w.retire(&mem_inst(0x1000, 0x10_0000 + p * 4096, 4));
        }
        assert_eq!(w.d_stream_pages(), 10);
        assert_eq!(w.d_stream_blocks(), 10);
    }
}

//! One-pass driver that computes all 47 characteristics.

use crate::ilp::IlpAnalyzer;
use crate::mix::InstructionMix;
use crate::ppm::{PpmPredictor, PpmVariant};
use crate::regtraffic::RegTraffic;
use crate::strides::StrideAnalyzer;
use crate::vector::{MicaVector, NUM_METRICS};
use crate::working_set::WorkingSet;
use tinyisa::{DynInst, TraceSink};

/// Computes the full 47-dimensional [`MicaVector`] in a single pass over the
/// instruction trace.
///
/// Attach it to a [`tinyisa::Vm`] run as the [`TraceSink`], then call
/// [`CharacterizationSuite::finish`]. The individual analyzers are exposed
/// for callers that only need a subset (measuring fewer characteristics is
/// the entire point of the paper's Section V).
#[derive(Debug, Clone)]
pub struct CharacterizationSuite {
    /// Instruction mix (metrics 1–6).
    pub mix: InstructionMix,
    /// Idealized ILP (metrics 7–10).
    pub ilp: IlpAnalyzer,
    /// Register traffic (metrics 11–19).
    pub reg: RegTraffic,
    /// Working sets (metrics 20–23).
    pub wss: WorkingSet,
    /// Data strides (metrics 24–43).
    pub strides: StrideAnalyzer,
    /// PPM branch predictability, GAg/PAg/GAs/PAs (metrics 44–47).
    pub ppm: [PpmPredictor; 4],
    /// Batch-path scratch: the conditional-branch outcomes of the current
    /// block, extracted once and fed to all four predictors.
    branch_scratch: Vec<(u64, bool)>,
}

impl Default for CharacterizationSuite {
    fn default() -> Self {
        Self::new()
    }
}

impl CharacterizationSuite {
    /// A suite with the paper's configuration.
    pub fn new() -> Self {
        CharacterizationSuite {
            mix: InstructionMix::new(),
            ilp: IlpAnalyzer::new(),
            reg: RegTraffic::new(),
            wss: WorkingSet::new(),
            strides: StrideAnalyzer::new(),
            ppm: [
                PpmPredictor::new(PpmVariant::GAg),
                PpmPredictor::new(PpmVariant::PAg),
                PpmPredictor::new(PpmVariant::GAs),
                PpmPredictor::new(PpmVariant::PAs),
            ],
            branch_scratch: Vec::new(),
        }
    }

    /// Total instructions observed.
    pub fn total_instructions(&self) -> u64 {
        self.mix.total()
    }

    /// Assemble the 47 metrics, in Table II order.
    pub fn finish(&self) -> MicaVector {
        let mut v = Vec::with_capacity(NUM_METRICS);
        v.extend_from_slice(&self.mix.fractions());
        v.extend(self.ilp.ipcs());
        v.push(self.reg.avg_input_operands());
        v.push(self.reg.avg_degree_of_use());
        v.extend_from_slice(&self.reg.dependency_distance_cdf());
        v.extend_from_slice(&self.wss.counts());
        v.extend_from_slice(&self.strides.all());
        v.extend(self.ppm.iter().map(|p| p.accuracy()));
        MicaVector::new(v)
    }
}

impl TraceSink for CharacterizationSuite {
    fn retire(&mut self, inst: &DynInst) {
        self.mix.retire(inst);
        self.ilp.retire(inst);
        self.reg.retire(inst);
        self.wss.retire(inst);
        self.strides.retire(inst);
        for p in &mut self.ppm {
            p.retire(inst);
        }
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        // Fan the whole block out analyzer by analyzer (each runs its own
        // batch implementation over a hot block) instead of instruction by
        // instruction. The analyzers are independent, so per-analyzer
        // state evolves identically either way.
        self.mix.retire_block(block);
        self.ilp.retire_block(block);
        self.reg.retire_block(block);
        self.wss.retire_block(block);
        self.strides.retire_block(block);
        // Extract the (usually sparse) conditional branches once, then
        // feed all four predictors from the same scratch.
        self.branch_scratch.clear();
        for inst in block {
            if let Some(ctrl) = inst.ctrl {
                if ctrl.conditional {
                    self.branch_scratch.push((inst.pc, ctrl.taken));
                }
            }
        }
        for p in &mut self.ppm {
            p.observe_block(&self.branch_scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use tinyisa::{regs::*, Asm, Vm};

    /// A loop that strides through an array, with one multiply and one FP op
    /// per iteration — every analyzer gets exercised.
    fn sample_vector() -> MicaVector {
        let mut a = Asm::new();
        let head = a.label();
        a.li(T0, 0);
        a.li(T2, 0x10_0000);
        a.fli(F0, 1.5);
        a.bind(head);
        a.ld8(T3, T2, 0);
        a.mul(T4, T3, T3);
        a.st8(T4, T2, 8);
        a.fadd(F1, F0, F0);
        a.addi(T2, T2, 16);
        a.addi(T0, T0, 1);
        a.slti(T1, T0, 500);
        a.bne(T1, ZERO, head);
        a.halt();
        let mut suite = CharacterizationSuite::new();
        let mut vm = Vm::new(a.assemble().unwrap());
        vm.run(&mut suite, 100_000).unwrap();
        suite.finish()
    }

    #[test]
    fn finish_produces_47_sane_values() {
        let v = sample_vector();
        assert_eq!(v.values().len(), 47);
        for (i, x) in v.values().iter().enumerate() {
            assert!(x.is_finite(), "metric {i} not finite: {x}");
            assert!(*x >= 0.0, "metric {i} negative: {x}");
        }
    }

    #[test]
    fn mix_fractions_sum_to_one() {
        let v = sample_vector();
        let s: f64 = v.values()[..6].iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ilp_monotone_in_window() {
        let v = sample_vector();
        let ilp = &v.values()[6..10];
        for w in ilp.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{ilp:?}");
        }
    }

    #[test]
    fn loop_branch_is_highly_predictable() {
        let v = sample_vector();
        for m in [metrics::PPM_GAG, metrics::PPM_PAG, metrics::PPM_GAS, metrics::PPM_PAS] {
            assert!(v.get(m) > 0.95, "{m}: {}", v.get(m));
        }
    }

    #[test]
    fn working_set_matches_touched_range() {
        let v = sample_vector();
        // 500 iterations * 16 bytes = 8000 bytes = 250 blocks, 2-3 pages.
        let blocks = v.get(metrics::D_WSS_BLOCKS);
        assert!((245.0..=255.0).contains(&blocks), "blocks {blocks}");
        let pages = v.get(metrics::D_WSS_PAGES);
        assert!((1.0..=4.0).contains(&pages), "pages {pages}");
    }

    #[test]
    fn strided_loop_has_small_local_strides() {
        let v = sample_vector();
        assert!(v.get(metrics::LOCAL_LOAD_STRIDE_64) > 0.95);
        assert_eq!(v.get(metrics::LOCAL_LOAD_STRIDE_0), 0.0);
    }
}

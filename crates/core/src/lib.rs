//! The 47 microarchitecture-independent program characteristics of the MICA
//! methodology (Hoste & Eeckhout, IISWC 2006), computed online from a
//! [`tinyisa`] instruction trace.
//!
//! The metrics cover six categories, in the exact order of Table II of the
//! paper:
//!
//! 1. **Instruction mix** (6): fraction of loads, stores, control transfers,
//!    integer arithmetic, integer multiplies, floating-point operations.
//! 2. **ILP** (4): IPC of an idealized out-of-order processor (perfect
//!    caches, perfect branch prediction, unlimited functional units) limited
//!    only by a window of 32/64/128/256 in-flight instructions.
//! 3. **Register traffic** (9): average number of register input operands,
//!    average degree of register use, and the cumulative distribution of
//!    register dependency distances (≤ 1, 2, 4, 8, 16, 32, 64).
//! 4. **Working set** (4): unique 32-byte blocks and 4 KiB pages touched by
//!    the data and the instruction stream.
//! 5. **Data stream strides** (20): cumulative distributions of local and
//!    global load/store strides (= 0, ≤ 8, ≤ 64, ≤ 512, ≤ 4096 bytes).
//! 6. **Branch predictability** (4): accuracy of four Prediction-by-
//!    Partial-Matching predictors (GAg, PAg, GAs, PAs).
//!
//! # Example
//!
//! ```
//! use tinyisa::{Asm, Vm, regs::*};
//! use mica_core::CharacterizationSuite;
//!
//! # fn main() -> Result<(), tinyisa::AsmError> {
//! let mut a = Asm::new();
//! let head = a.label();
//! a.li(T0, 0);
//! a.li(T2, 0x8000);
//! a.bind(head);
//! a.st8(T0, T2, 0);
//! a.addi(T2, T2, 8);
//! a.addi(T0, T0, 1);
//! a.slti(T1, T0, 1000);
//! a.bne(T1, ZERO, head);
//! a.halt();
//!
//! let mut suite = CharacterizationSuite::new();
//! let mut vm = Vm::new(a.assemble()?);
//! vm.run(&mut suite, 1_000_000).unwrap();
//! let v = suite.finish();
//! // One store per 5-instruction loop iteration:
//! assert!((v.get(mica_core::metrics::PCT_STORES) - 0.2).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

mod backend;
mod extended;
mod ilp;
mod mix;
mod phase;
mod ppm;
mod regtraffic;
mod reuse;
mod strides;
mod suite;
mod vector;
mod working_set;

pub use backend::{Backend, PerInst};
pub use extended::{
    BranchBehavior, ExtendedSuite, EXTENDED_METRIC_NAMES, EXTENDED_REUSE_BUCKETS,
    NUM_EXTENDED_METRICS,
};
pub use ilp::{IlpAnalyzer, IlpCriticalPath};
pub use mix::InstructionMix;
pub use phase::PhaseProfiler;
pub use ppm::{PpmPredictor, PpmVariant};
pub use regtraffic::{RegTraffic, DEP_DIST_BUCKETS};
pub use reuse::{ReuseDistance, REUSE_BUCKETS};
pub use strides::{StrideAnalyzer, STRIDE_BUCKETS};
pub use suite::CharacterizationSuite;
pub use vector::{Category, MetricId, MetricInfo, MicaVector, METRICS, NUM_METRICS};
pub use working_set::WorkingSet;

/// Named [`MetricId`] constants for all 47 characteristics, in Table II
/// order.
pub mod metrics {
    use crate::vector::MetricId;

    pub const PCT_LOADS: MetricId = MetricId(0);
    pub const PCT_STORES: MetricId = MetricId(1);
    pub const PCT_CONTROL: MetricId = MetricId(2);
    pub const PCT_ARITH: MetricId = MetricId(3);
    pub const PCT_INT_MUL: MetricId = MetricId(4);
    pub const PCT_FP: MetricId = MetricId(5);
    pub const ILP_32: MetricId = MetricId(6);
    pub const ILP_64: MetricId = MetricId(7);
    pub const ILP_128: MetricId = MetricId(8);
    pub const ILP_256: MetricId = MetricId(9);
    pub const AVG_INPUT_OPERANDS: MetricId = MetricId(10);
    pub const AVG_DEGREE_OF_USE: MetricId = MetricId(11);
    pub const DEP_DIST_LE_1: MetricId = MetricId(12);
    pub const DEP_DIST_LE_2: MetricId = MetricId(13);
    pub const DEP_DIST_LE_4: MetricId = MetricId(14);
    pub const DEP_DIST_LE_8: MetricId = MetricId(15);
    pub const DEP_DIST_LE_16: MetricId = MetricId(16);
    pub const DEP_DIST_LE_32: MetricId = MetricId(17);
    pub const DEP_DIST_LE_64: MetricId = MetricId(18);
    pub const D_WSS_BLOCKS: MetricId = MetricId(19);
    pub const D_WSS_PAGES: MetricId = MetricId(20);
    pub const I_WSS_BLOCKS: MetricId = MetricId(21);
    pub const I_WSS_PAGES: MetricId = MetricId(22);
    pub const LOCAL_LOAD_STRIDE_0: MetricId = MetricId(23);
    pub const LOCAL_LOAD_STRIDE_8: MetricId = MetricId(24);
    pub const LOCAL_LOAD_STRIDE_64: MetricId = MetricId(25);
    pub const LOCAL_LOAD_STRIDE_512: MetricId = MetricId(26);
    pub const LOCAL_LOAD_STRIDE_4096: MetricId = MetricId(27);
    pub const GLOBAL_LOAD_STRIDE_0: MetricId = MetricId(28);
    pub const GLOBAL_LOAD_STRIDE_8: MetricId = MetricId(29);
    pub const GLOBAL_LOAD_STRIDE_64: MetricId = MetricId(30);
    pub const GLOBAL_LOAD_STRIDE_512: MetricId = MetricId(31);
    pub const GLOBAL_LOAD_STRIDE_4096: MetricId = MetricId(32);
    pub const LOCAL_STORE_STRIDE_0: MetricId = MetricId(33);
    pub const LOCAL_STORE_STRIDE_8: MetricId = MetricId(34);
    pub const LOCAL_STORE_STRIDE_64: MetricId = MetricId(35);
    pub const LOCAL_STORE_STRIDE_512: MetricId = MetricId(36);
    pub const LOCAL_STORE_STRIDE_4096: MetricId = MetricId(37);
    pub const GLOBAL_STORE_STRIDE_0: MetricId = MetricId(38);
    pub const GLOBAL_STORE_STRIDE_8: MetricId = MetricId(39);
    pub const GLOBAL_STORE_STRIDE_64: MetricId = MetricId(40);
    pub const GLOBAL_STORE_STRIDE_512: MetricId = MetricId(41);
    pub const GLOBAL_STORE_STRIDE_4096: MetricId = MetricId(42);
    pub const PPM_GAG: MetricId = MetricId(43);
    pub const PPM_PAG: MetricId = MetricId(44);
    pub const PPM_GAS: MetricId = MetricId(45);
    pub const PPM_PAS: MetricId = MetricId(46);
}

//! The metric registry and the characterization vector type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// Number of microarchitecture-independent characteristics (Table II).
pub const NUM_METRICS: usize = 47;

/// Identifier of one of the 47 characteristics; indexes [`METRICS`] and
/// [`MicaVector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MetricId(pub usize);

impl MetricId {
    /// Static metadata for this metric.
    pub fn info(self) -> &'static MetricInfo {
        &METRICS[self.0]
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.info().name)
    }
}

/// The six metric categories of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    InstructionMix,
    Ilp,
    RegisterTraffic,
    WorkingSet,
    DataStreamStrides,
    BranchPredictability,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::InstructionMix => "instruction mix",
            Category::Ilp => "ILP",
            Category::RegisterTraffic => "register traffic",
            Category::WorkingSet => "working set size",
            Category::DataStreamStrides => "data stream strides",
            Category::BranchPredictability => "branch predictability",
        };
        f.write_str(s)
    }
}

/// Static description of one characteristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricInfo {
    /// 1-based number as in Table II of the paper.
    pub number: usize,
    /// Human-readable name (mirrors Table II).
    pub name: &'static str,
    /// Short identifier suitable for CSV headers and axis labels.
    pub short: &'static str,
    /// Category this metric belongs to.
    pub category: Category,
}

macro_rules! metric_table {
    ($(($num:expr, $name:expr, $short:expr, $cat:ident)),+ $(,)?) => {
        [$(MetricInfo {
            number: $num,
            name: $name,
            short: $short,
            category: Category::$cat,
        }),+]
    };
}

/// All 47 characteristics in Table II order (index = `MetricId.0`,
/// `number` = the paper's 1-based numbering).
pub const METRICS: [MetricInfo; NUM_METRICS] = metric_table![
    (1, "percentage loads", "pct_loads", InstructionMix),
    (2, "percentage stores", "pct_stores", InstructionMix),
    (3, "percentage control transfers", "pct_control", InstructionMix),
    (4, "percentage arithmetic operations", "pct_arith", InstructionMix),
    (5, "percentage integer multiplies", "pct_int_mul", InstructionMix),
    (6, "percentage fp operations", "pct_fp", InstructionMix),
    (7, "ILP, 32-entry window", "ilp_32", Ilp),
    (8, "ILP, 64-entry window", "ilp_64", Ilp),
    (9, "ILP, 128-entry window", "ilp_128", Ilp),
    (10, "ILP, 256-entry window", "ilp_256", Ilp),
    (11, "avg. number of input operands", "avg_inputs", RegisterTraffic),
    (12, "avg. degree of use", "avg_use", RegisterTraffic),
    (13, "prob. register dependence = 1", "dep_le_1", RegisterTraffic),
    (14, "prob. register dependence <= 2", "dep_le_2", RegisterTraffic),
    (15, "prob. register dependence <= 4", "dep_le_4", RegisterTraffic),
    (16, "prob. register dependence <= 8", "dep_le_8", RegisterTraffic),
    (17, "prob. register dependence <= 16", "dep_le_16", RegisterTraffic),
    (18, "prob. register dependence <= 32", "dep_le_32", RegisterTraffic),
    (19, "prob. register dependence <= 64", "dep_le_64", RegisterTraffic),
    (20, "D-stream at the 32B block level", "d_wss_blk", WorkingSet),
    (21, "D-stream at the 4KB-page level", "d_wss_pg", WorkingSet),
    (22, "I-stream at the 32B block level", "i_wss_blk", WorkingSet),
    (23, "I-stream at the 4KB page level", "i_wss_pg", WorkingSet),
    (24, "prob. local load stride = 0", "lls_0", DataStreamStrides),
    (25, "prob. local load stride <= 8", "lls_8", DataStreamStrides),
    (26, "prob. local load stride <= 64", "lls_64", DataStreamStrides),
    (27, "prob. local load stride <= 512", "lls_512", DataStreamStrides),
    (28, "prob. local load stride <= 4096", "lls_4096", DataStreamStrides),
    (29, "prob. global load stride = 0", "gls_0", DataStreamStrides),
    (30, "prob. global load stride <= 8", "gls_8", DataStreamStrides),
    (31, "prob. global load stride <= 64", "gls_64", DataStreamStrides),
    (32, "prob. global load stride <= 512", "gls_512", DataStreamStrides),
    (33, "prob. global load stride <= 4096", "gls_4096", DataStreamStrides),
    (34, "prob. local store stride = 0", "lss_0", DataStreamStrides),
    (35, "prob. local store stride <= 8", "lss_8", DataStreamStrides),
    (36, "prob. local store stride <= 64", "lss_64", DataStreamStrides),
    (37, "prob. local store stride <= 512", "lss_512", DataStreamStrides),
    (38, "prob. local store stride <= 4096", "lss_4096", DataStreamStrides),
    (39, "prob. global store stride = 0", "gss_0", DataStreamStrides),
    (40, "prob. global store stride <= 8", "gss_8", DataStreamStrides),
    (41, "prob. global store stride <= 64", "gss_64", DataStreamStrides),
    (42, "prob. global store stride <= 512", "gss_512", DataStreamStrides),
    (43, "prob. global store stride <= 4096", "gss_4096", DataStreamStrides),
    (44, "GAg PPM predictor", "ppm_gag", BranchPredictability),
    (45, "PAg PPM predictor", "ppm_pag", BranchPredictability),
    (46, "GAs PPM predictor", "ppm_gas", BranchPredictability),
    (47, "PAs PPM predictor", "ppm_pas", BranchPredictability),
];

/// A complete 47-dimensional microarchitecture-independent characterization
/// of one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicaVector {
    values: Vec<f64>,
}

impl MicaVector {
    /// Wrap a raw 47-element vector.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != NUM_METRICS`.
    pub fn new(values: Vec<f64>) -> Self {
        assert_eq!(values.len(), NUM_METRICS, "MicaVector needs {NUM_METRICS} values");
        MicaVector { values }
    }

    /// The raw values, in Table II order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of one metric.
    pub fn get(&self, id: MetricId) -> f64 {
        self.values[id.0]
    }

    /// Extract the values of a metric subset, preserving `subset` order.
    pub fn project(&self, subset: &[MetricId]) -> Vec<f64> {
        subset.iter().map(|m| self.values[m.0]).collect()
    }

    /// Consume into the raw vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

impl Index<MetricId> for MicaVector {
    type Output = f64;

    fn index(&self, id: MetricId) -> &f64 {
        &self.values[id.0]
    }
}

impl fmt::Display for MicaVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (info, v) in METRICS.iter().zip(&self.values) {
            writeln!(f, "{:>2}. {:<40} {v:.6}", info.number, info.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_47_entries_in_order() {
        assert_eq!(METRICS.len(), 47);
        for (i, info) in METRICS.iter().enumerate() {
            assert_eq!(info.number, i + 1);
        }
    }

    #[test]
    fn category_counts_match_table_ii() {
        let count = |c: Category| METRICS.iter().filter(|m| m.category == c).count();
        assert_eq!(count(Category::InstructionMix), 6);
        assert_eq!(count(Category::Ilp), 4);
        assert_eq!(count(Category::RegisterTraffic), 9);
        assert_eq!(count(Category::WorkingSet), 4);
        assert_eq!(count(Category::DataStreamStrides), 20);
        assert_eq!(count(Category::BranchPredictability), 4);
    }

    #[test]
    fn shorts_are_unique() {
        let mut shorts: Vec<_> = METRICS.iter().map(|m| m.short).collect();
        shorts.sort_unstable();
        shorts.dedup();
        assert_eq!(shorts.len(), 47);
    }

    #[test]
    fn vector_access_and_projection() {
        let v = MicaVector::new((0..47).map(|i| i as f64).collect());
        assert_eq!(v.get(MetricId(5)), 5.0);
        assert_eq!(v[MetricId(46)], 46.0);
        assert_eq!(v.project(&[MetricId(3), MetricId(1)]), vec![3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "47")]
    fn wrong_length_panics() {
        let _ = MicaVector::new(vec![0.0; 3]);
    }
}

//! Runtime selection between trace-delivery backends.
//!
//! Every analyzer in this crate has two observably identical tiers: the
//! **reference** tier — one [`TraceSink::retire`] call per retired
//! instruction, the straightforward code the metrics were first written as
//! — and the **batch** tier, where [`TraceSink::retire_block`] overrides
//! process a whole instruction block at once (scratch buffers,
//! dedup-before-hash, table-driven bucket updates). The tiers must agree
//! bit-for-bit; `tests/backend_diff.rs` is the differential harness that
//! enforces it, in the spirit of nanoBench/uops.info cross-checking
//! measured characterizations against an independent implementation.
//!
//! The active tier is chosen at runtime with `MICA_BACKEND=ref|batch`
//! (default `ref`). Because `tinyisa::Vm` always delivers blocks, the
//! reference tier is selected by wrapping the sink in [`PerInst`], which
//! unbundles each block into single `retire` calls.

use std::fmt;
use tinyisa::{DynInst, TraceSink};

/// Which analyzer delivery tier to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The per-instruction reference path: analyzers see one
    /// [`TraceSink::retire`] call per instruction and none of their batch
    /// code runs.
    #[default]
    Ref,
    /// Block delivery: analyzers receive [`TraceSink::retire_block`] calls
    /// and run their batch-oriented implementations.
    Batch,
}

impl Backend {
    /// Both backends, reference tier first.
    pub const ALL: [Backend; 2] = [Backend::Ref, Backend::Batch];

    /// Parse a backend name as accepted by `MICA_BACKEND`.
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ref" | "reference" => Some(Backend::Ref),
            "batch" => Some(Backend::Batch),
            _ => None,
        }
    }

    /// Read the backend from `MICA_BACKEND`; unset or empty means
    /// [`Backend::Ref`].
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value — a typo silently falling back to
    /// the reference tier would invalidate any measurement made under it.
    pub fn from_env() -> Backend {
        match std::env::var("MICA_BACKEND") {
            Err(_) => Backend::Ref,
            Ok(v) if v.trim().is_empty() => Backend::Ref,
            Ok(v) => Backend::parse(&v).unwrap_or_else(|| {
                panic!("MICA_BACKEND={v:?} is not a backend (use \"ref\" or \"batch\")")
            }),
        }
    }

    /// The canonical lowercase name (`"ref"` / `"batch"`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Ref => "ref",
            Backend::Batch => "batch",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Forces the wrapped sink onto the per-instruction reference path.
///
/// Incoming blocks are unbundled into single [`TraceSink::retire`] calls,
/// so any `retire_block` override on `S` never runs. This is how
/// [`Backend::Ref`] is implemented under a block-delivering
/// [`tinyisa::Vm`].
#[derive(Debug, Clone, Default)]
pub struct PerInst<S>(pub S);

impl<S> PerInst<S> {
    /// Wrap `sink`.
    pub fn new(sink: S) -> Self {
        PerInst(sink)
    }

    /// Unwrap into the inner sink.
    pub fn into_inner(self) -> S {
        self.0
    }
}

impl<S: TraceSink> TraceSink for PerInst<S> {
    fn retire(&mut self, inst: &DynInst) {
        self.0.retire(inst);
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        for inst in block {
            self.0.retire(inst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::InstClass;

    #[test]
    fn parse_accepts_both_tiers_case_insensitively() {
        assert_eq!(Backend::parse("ref"), Some(Backend::Ref));
        assert_eq!(Backend::parse("reference"), Some(Backend::Ref));
        assert_eq!(Backend::parse(" BATCH "), Some(Backend::Batch));
        assert_eq!(Backend::parse("jit"), None);
        assert_eq!(Backend::parse(""), None);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
    }

    #[test]
    fn per_inst_unbundles_blocks() {
        /// A sink whose batch path must never run.
        #[derive(Default)]
        struct RefOnly {
            retired: u64,
        }
        impl TraceSink for RefOnly {
            fn retire(&mut self, _inst: &DynInst) {
                self.retired += 1;
            }
            fn retire_block(&mut self, _block: &[DynInst]) {
                panic!("PerInst must suppress the batch path");
            }
        }
        let inst = DynInst {
            pc: 0,
            class: InstClass::IntAlu,
            dst: None,
            srcs: [None; 3],
            mem: None,
            ctrl: None,
        };
        let mut sink = PerInst::new(RefOnly::default());
        sink.retire_block(&[inst; 5]);
        sink.retire(&inst);
        assert_eq!(sink.into_inner().retired, 6);
    }
}

//! Idealized instruction-level-parallelism characterization (metrics 7–10).

use tinyisa::{DynInst, TraceSink};

/// The window sizes of Table II.
pub const DEFAULT_WINDOWS: [usize; 4] = [32, 64, 128, 256];

/// One idealized out-of-order machine, limited only by its window size.
///
/// Everything else is perfect: caches, branch prediction, unbounded
/// functional units, unit execution latency, perfect memory disambiguation.
/// An instruction executes one cycle after all its register producers have
/// executed, but cannot enter the window (and therefore execute) before the
/// instruction `window_size` positions ahead of it has completed.
#[derive(Debug, Clone)]
struct WindowModel {
    size: usize,
    /// Completion cycle of each unified register's most recent producer.
    reg_ready: [u64; 64],
    /// Completion cycles of the last `size` instructions (ring buffer).
    ring: Vec<u64>,
    count: u64,
    last_cycle: u64,
}

impl WindowModel {
    fn new(size: usize) -> Self {
        WindowModel {
            size,
            reg_ready: [0; 64],
            ring: vec![0; size],
            count: 0,
            last_cycle: 0,
        }
    }

    fn observe(&mut self, inst: &DynInst) {
        let slot = (self.count % self.size as u64) as usize;
        // Window constraint: this instruction enters the window only once the
        // instruction `size` positions earlier has completed.
        let window_ready = if self.count >= self.size as u64 { self.ring[slot] } else { 0 };
        let mut start = window_ready;
        for s in inst.sources() {
            start = start.max(self.reg_ready[s.unified()]);
        }
        let complete = start + 1;
        if let Some(d) = inst.dst {
            self.reg_ready[d.unified()] = complete;
        }
        self.ring[slot] = complete;
        self.count += 1;
        self.last_cycle = self.last_cycle.max(complete);
    }

    fn ipc(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.count as f64 / self.last_cycle as f64
        }
    }
}

/// Computes the idealized IPC achievable with windows of 32, 64, 128 and 256
/// in-flight instructions (metrics 7–10 of Table II).
///
/// Custom window sizes can be supplied with [`IlpAnalyzer::with_windows`]
/// (used by the ablation benchmarks).
#[derive(Debug, Clone)]
pub struct IlpAnalyzer {
    models: Vec<WindowModel>,
}

impl Default for IlpAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl IlpAnalyzer {
    /// Analyzer with the paper's four window sizes.
    pub fn new() -> Self {
        Self::with_windows(&DEFAULT_WINDOWS)
    }

    /// Analyzer with custom window sizes.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty or contains a zero size.
    pub fn with_windows(windows: &[usize]) -> Self {
        assert!(!windows.is_empty(), "need at least one window size");
        assert!(windows.iter().all(|&w| w > 0), "window sizes must be positive");
        IlpAnalyzer { models: windows.iter().map(|&w| WindowModel::new(w)).collect() }
    }

    /// The configured window sizes.
    pub fn windows(&self) -> Vec<usize> {
        self.models.iter().map(|m| m.size).collect()
    }

    /// IPC per configured window, in configuration order.
    pub fn ipcs(&self) -> Vec<f64> {
        self.models.iter().map(|m| m.ipc()).collect()
    }
}

impl TraceSink for IlpAnalyzer {
    fn retire(&mut self, inst: &DynInst) {
        for m in &mut self.models {
            m.observe(inst);
        }
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        // Loop inversion: the models are independent, so running one model
        // over the whole block keeps its `reg_ready`/ring state hot in
        // cache instead of cycling all models through it per instruction.
        // Each model sees the same instruction sequence either way.
        for m in &mut self.models {
            for inst in block {
                m.observe(inst);
            }
        }
    }
}


/// The simpler ILP approximation some workload studies use instead of
/// windowed scheduling: split the stream into consecutive windows of `w`
/// instructions and compute each window's dependence-chain critical path;
/// IPC = instructions / sum of critical paths.
///
/// This ignores overlap *between* windows, so it lower-bounds
/// [`IlpAnalyzer`]'s windowed-scheduling IPC; the ablation benchmark
/// quantifies the gap.
#[derive(Debug, Clone)]
pub struct IlpCriticalPath {
    size: usize,
    /// Chain depth at each unified register within the current window.
    depth: [u64; 64],
    in_window: usize,
    window_critical: u64,
    total_cycles: u64,
    count: u64,
}

impl IlpCriticalPath {
    /// Analyzer with window size `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "window size must be positive");
        IlpCriticalPath {
            size,
            depth: [0; 64],
            in_window: 0,
            window_critical: 0,
            total_cycles: 0,
            count: 0,
        }
    }

    /// IPC under the per-window critical-path model.
    pub fn ipc(&self) -> f64 {
        let cycles = self.total_cycles + self.window_critical;
        if self.count == 0 || cycles == 0 {
            0.0
        } else {
            self.count as f64 / cycles as f64
        }
    }
}

impl TraceSink for IlpCriticalPath {
    fn retire(&mut self, inst: &DynInst) {
        let mut d = 0;
        for s in inst.sources() {
            d = d.max(self.depth[s.unified()]);
        }
        let d = d + 1;
        if let Some(dst) = inst.dst {
            self.depth[dst.unified()] = d;
        }
        self.window_critical = self.window_critical.max(d);
        self.count += 1;
        self.in_window += 1;
        if self.in_window == self.size {
            self.total_cycles += self.window_critical;
            self.window_critical = 0;
            self.in_window = 0;
            self.depth = [0; 64];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{InstClass, RegRef};

    fn inst(dst: Option<u8>, srcs: &[u8]) -> DynInst {
        let mut s = [None; 3];
        for (i, &r) in srcs.iter().enumerate() {
            s[i] = Some(RegRef::Int(r));
        }
        DynInst {
            pc: 0,
            class: InstClass::IntAlu,
            dst: dst.map(RegRef::Int),
            srcs: s,
            mem: None,
            ctrl: None,
        }
    }

    #[test]
    fn serial_chain_has_ipc_one() {
        // Each instruction depends on the previous one: r1 = f(r1).
        let mut a = IlpAnalyzer::with_windows(&[32]);
        for _ in 0..1000 {
            a.retire(&inst(Some(1), &[1]));
        }
        let ipc = a.ipcs()[0];
        assert!((ipc - 1.0).abs() < 1e-9, "serial chain IPC should be 1, got {ipc}");
    }

    #[test]
    fn independent_stream_is_window_limited() {
        // Fully independent instructions: parallelism = window size.
        let mut a = IlpAnalyzer::with_windows(&[4, 16]);
        for i in 0..10_000u64 {
            // Distinct destination registers, no sources.
            a.retire(&inst(Some((i % 8 + 1) as u8), &[]));
        }
        let ipcs = a.ipcs();
        // Window of 4 can sustain ~4 IPC; window of 16 only ~8 because only 8
        // registers rotate — but with no sources there's no dependence, so
        // both should approach their window size.
        assert!(ipcs[0] > 3.5, "window-4 IPC {}", ipcs[0]);
        assert!(ipcs[1] > 10.0, "window-16 IPC {}", ipcs[1]);
    }

    #[test]
    fn larger_window_never_hurts() {
        let mut a = IlpAnalyzer::new();
        // A mix: pairs of dependent instructions.
        for i in 0..5000u64 {
            let r = (i % 20 + 1) as u8;
            a.retire(&inst(Some(r), &[]));
            a.retire(&inst(Some(r), &[r]));
        }
        let ipcs = a.ipcs();
        for w in ipcs.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "IPC must be monotone in window size: {ipcs:?}");
        }
    }

    #[test]
    fn empty_trace_ipc_zero() {
        assert_eq!(IlpAnalyzer::new().ipcs(), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let _ = IlpAnalyzer::with_windows(&[0]);
    }
    #[test]
    fn critical_path_serial_chain_is_ipc_one() {
        let mut a = IlpCriticalPath::new(32);
        for _ in 0..960 {
            a.retire(&inst(Some(1), &[1]));
        }
        assert!((a.ipc() - 1.0).abs() < 0.05, "{}", a.ipc());
    }

    #[test]
    fn critical_path_lower_bounds_windowed_scheduling() {
        // A half-dependent stream: scheduling overlaps across windows,
        // the per-window model cannot.
        let mut sched = IlpAnalyzer::with_windows(&[64]);
        let mut cp = IlpCriticalPath::new(64);
        for i in 0..10_000u64 {
            let d = (i % 6 + 1) as u8;
            let srcs = if i % 2 == 0 { vec![] } else { vec![d] };
            let di = inst(Some(d), &srcs);
            sched.retire(&di);
            cp.retire(&di);
        }
        let sched_ipc = sched.ipcs()[0];
        assert!(
            cp.ipc() <= sched_ipc + 1e-9,
            "critical-path {} must not exceed scheduled {sched_ipc}",
            cp.ipc(),
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn critical_path_zero_window_rejected() {
        let _ = IlpCriticalPath::new(0);
    }

}

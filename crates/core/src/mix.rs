//! Instruction-mix characterization (metrics 1–6).

use tinyisa::{DynInst, InstClass, TraceSink};

/// Counts retired instructions per class and reports the mix as fractions of
/// the total (metrics 1–6 of Table II).
///
/// "Arithmetic operations" are integer ALU operations; integer multiplies
/// and divides are reported separately, matching the paper's split.
#[derive(Debug, Default, Clone)]
pub struct InstructionMix {
    loads: u64,
    stores: u64,
    control: u64,
    arith: u64,
    int_mul: u64,
    fp: u64,
    total: u64,
}

impl InstructionMix {
    /// Create an empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total instructions observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The six mix fractions in Table II order: loads, stores, control
    /// transfers, arithmetic, integer multiplies, fp operations.
    ///
    /// All six are zero if no instruction was observed.
    pub fn fractions(&self) -> [f64; 6] {
        if self.total == 0 {
            return [0.0; 6];
        }
        let t = self.total as f64;
        [
            self.loads as f64 / t,
            self.stores as f64 / t,
            self.control as f64 / t,
            self.arith as f64 / t,
            self.int_mul as f64 / t,
            self.fp as f64 / t,
        ]
    }
}

impl TraceSink for InstructionMix {
    fn retire(&mut self, inst: &DynInst) {
        self.total += 1;
        match inst.class {
            InstClass::Load => self.loads += 1,
            InstClass::Store => self.stores += 1,
            InstClass::Branch | InstClass::Jump => self.control += 1,
            InstClass::IntAlu => self.arith += 1,
            InstClass::IntMul => self.int_mul += 1,
            InstClass::Fp => self.fp += 1,
        }
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        // Tally into a block-local array, touching the scattered counter
        // fields once per block instead of once per instruction.
        let mut n = [0u64; 6];
        for inst in block {
            let slot = match inst.class {
                InstClass::Load => 0,
                InstClass::Store => 1,
                InstClass::Branch | InstClass::Jump => 2,
                InstClass::IntAlu => 3,
                InstClass::IntMul => 4,
                InstClass::Fp => 5,
            };
            n[slot] += 1;
        }
        self.total += block.len() as u64;
        self.loads += n[0];
        self.stores += n[1];
        self.control += n[2];
        self.arith += n[3];
        self.int_mul += n[4];
        self.fp += n[5];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::RegRef;

    fn inst(class: InstClass) -> DynInst {
        DynInst {
            pc: 0,
            class,
            dst: Some(RegRef::Int(1)),
            srcs: [None; 3],
            mem: None,
            ctrl: None,
        }
    }

    #[test]
    fn empty_mix_is_zero() {
        assert_eq!(InstructionMix::new().fractions(), [0.0; 6]);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut m = InstructionMix::new();
        for class in [
            InstClass::Load,
            InstClass::Store,
            InstClass::Branch,
            InstClass::Jump,
            InstClass::IntAlu,
            InstClass::IntMul,
            InstClass::Fp,
        ] {
            m.retire(&inst(class));
        }
        let f = m.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Branch + Jump both count as control.
        assert!((f[2] - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn class_attribution() {
        let mut m = InstructionMix::new();
        m.retire(&inst(InstClass::Load));
        m.retire(&inst(InstClass::Load));
        m.retire(&inst(InstClass::Fp));
        m.retire(&inst(InstClass::IntMul));
        let f = m.fractions();
        assert_eq!(f[0], 0.5); // loads
        assert_eq!(f[5], 0.25); // fp
        assert_eq!(f[4], 0.25); // int mul
        assert_eq!(f[1], 0.0); // stores
        assert_eq!(m.total(), 4);
    }
}

//! Extended microarchitecture-independent characteristics.
//!
//! Beyond the 47 metrics of the paper's Table II, the authors' released
//! MICA tool measures additional categories. This module provides the two
//! that add real information on top of Table II: detailed **branch
//! behavior** (taken rate, transition rate, basic-block size) and the
//! **memory reuse-distance distribution** ([`crate::ReuseDistance`]).
//! [`ExtendedSuite`] bundles them with the standard
//! [`crate::CharacterizationSuite`].

use crate::reuse::{ReuseDistance, REUSE_BUCKETS};
use crate::suite::CharacterizationSuite;
use crate::vector::MicaVector;
use std::collections::HashMap;
use tinyisa::{DynInst, TraceSink};

/// Branch-behavior detail: taken fraction, per-branch transition rate and
/// dynamic basic-block length.
#[derive(Debug, Default, Clone)]
pub struct BranchBehavior {
    branches: u64,
    taken: u64,
    transitions: u64,
    /// Last outcome per static branch.
    last_outcome: HashMap<u64, bool>,
    instructions: u64,
    control: u64,
}

impl BranchBehavior {
    /// Create an empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of conditional branches that were taken.
    pub fn taken_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.taken as f64 / self.branches as f64
        }
    }

    /// Fraction of conditional-branch executions whose outcome differed
    /// from the same static branch's previous outcome. Low transition rates
    /// mean branches are biased (easily predictable even bimodally); rates
    /// near 1 mean systematic alternation.
    pub fn transition_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.transitions as f64 / self.branches as f64
        }
    }

    /// Mean dynamic instructions per control transfer ("basic block size").
    pub fn avg_basic_block(&self) -> f64 {
        if self.control == 0 {
            self.instructions as f64
        } else {
            self.instructions as f64 / self.control as f64
        }
    }

    /// Conditional branches observed.
    pub fn branches(&self) -> u64 {
        self.branches
    }
}

impl TraceSink for BranchBehavior {
    fn retire(&mut self, inst: &DynInst) {
        self.instructions += 1;
        if inst.class.is_control() {
            self.control += 1;
        }
        if let Some(ctrl) = inst.ctrl {
            if ctrl.conditional {
                self.branches += 1;
                if ctrl.taken {
                    self.taken += 1;
                }
                if let Some(prev) = self.last_outcome.insert(inst.pc, ctrl.taken) {
                    if prev != ctrl.taken {
                        self.transitions += 1;
                    }
                }
            }
        }
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        // Batch path: bulk-count instructions, tally control and branch
        // statistics locally, and touch the per-branch map only for actual
        // conditional branches.
        self.instructions += block.len() as u64;
        let mut control = 0u64;
        let mut branches = 0u64;
        let mut taken = 0u64;
        for inst in block {
            if inst.class.is_control() {
                control += 1;
            }
            if let Some(ctrl) = inst.ctrl {
                if ctrl.conditional {
                    branches += 1;
                    taken += ctrl.taken as u64;
                    if let Some(prev) = self.last_outcome.insert(inst.pc, ctrl.taken) {
                        if prev != ctrl.taken {
                            self.transitions += 1;
                        }
                    }
                }
            }
        }
        self.control += control;
        self.branches += branches;
        self.taken += taken;
    }
}

/// Number of extended metrics appended by [`ExtendedSuite`].
pub const NUM_EXTENDED_METRICS: usize = 10;

/// Names of the extended metrics, in [`ExtendedSuite::finish_extended`]
/// order.
pub const EXTENDED_METRIC_NAMES: [&str; NUM_EXTENDED_METRICS] = [
    "branch taken rate",
    "branch transition rate",
    "avg. basic block size",
    "cold access fraction",
    "prob. reuse distance < 16 blocks",
    "prob. reuse distance < 64 blocks",
    "prob. reuse distance < 256 blocks",
    "prob. reuse distance < 1024 blocks",
    "prob. reuse distance < 8192 blocks",
    "prob. reuse distance < 65536 blocks",
];

/// The 47 Table II characteristics plus the extended set (57 total).
#[derive(Debug, Clone)]
pub struct ExtendedSuite {
    /// The standard 47-metric suite.
    pub base: CharacterizationSuite,
    /// Branch-behavior detail.
    pub branch: BranchBehavior,
    /// Data reuse distances.
    pub reuse: ReuseDistance,
}

impl Default for ExtendedSuite {
    fn default() -> Self {
        Self::new()
    }
}

impl ExtendedSuite {
    /// An extended suite with default configuration.
    pub fn new() -> Self {
        ExtendedSuite {
            base: CharacterizationSuite::new(),
            branch: BranchBehavior::new(),
            reuse: ReuseDistance::new(),
        }
    }

    /// The standard 47-metric vector.
    pub fn finish_base(&self) -> MicaVector {
        self.base.finish()
    }

    /// The 10 extended metrics, in [`EXTENDED_METRIC_NAMES`] order.
    pub fn finish_extended(&self) -> [f64; NUM_EXTENDED_METRICS] {
        let cdf = self.reuse.cdf();
        [
            self.branch.taken_rate(),
            self.branch.transition_rate(),
            self.branch.avg_basic_block(),
            self.reuse.cold_fraction(),
            cdf[0],
            cdf[1],
            cdf[2],
            cdf[3],
            cdf[4],
            cdf[5],
        ]
    }

    /// All 57 values: the 47 Table II metrics followed by the extended 10.
    pub fn finish_all(&self) -> Vec<f64> {
        let mut v = self.finish_base().into_values();
        v.extend_from_slice(&self.finish_extended());
        v
    }
}

impl TraceSink for ExtendedSuite {
    fn retire(&mut self, inst: &DynInst) {
        self.base.retire(inst);
        self.branch.retire(inst);
        self.reuse.retire(inst);
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        self.base.retire_block(block);
        self.branch.retire_block(block);
        self.reuse.retire_block(block);
    }
}

/// Re-export of the reuse bucket limits for display code.
pub const EXTENDED_REUSE_BUCKETS: [u64; 6] = REUSE_BUCKETS;

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{regs::*, Asm, CtrlInfo, InstClass, Vm};

    fn branch(pc: u64, taken: bool) -> DynInst {
        DynInst {
            pc,
            class: InstClass::Branch,
            dst: None,
            srcs: [None; 3],
            mem: None,
            ctrl: Some(CtrlInfo { taken, target: pc, conditional: true }),
        }
    }

    #[test]
    fn taken_rate_counts() {
        let mut b = BranchBehavior::new();
        for i in 0..10 {
            b.retire(&branch(0x100, i < 7));
        }
        assert!((b.taken_rate() - 0.7).abs() < 1e-12);
        assert_eq!(b.branches(), 10);
    }

    #[test]
    fn transition_rate_distinguishes_bias_from_alternation() {
        let mut biased = BranchBehavior::new();
        let mut alternating = BranchBehavior::new();
        for i in 0..100 {
            biased.retire(&branch(0x100, true));
            alternating.retire(&branch(0x100, i % 2 == 0));
        }
        assert_eq!(biased.transition_rate(), 0.0);
        assert!(alternating.transition_rate() > 0.95);
        // Both are 50-100% taken; the transition rate tells them apart.
    }

    #[test]
    fn transition_rate_is_per_static_branch() {
        // Two branches with opposite constant outcomes, interleaved: a
        // global view would see constant alternation; per-branch sees none.
        let mut b = BranchBehavior::new();
        for _ in 0..50 {
            b.retire(&branch(0x100, true));
            b.retire(&branch(0x200, false));
        }
        assert_eq!(b.transition_rate(), 0.0);
    }

    #[test]
    fn basic_block_size_from_real_program() {
        let mut a = Asm::new();
        let head = a.label();
        a.li(T0, 0);
        a.bind(head);
        a.addi(T0, T0, 1);
        a.addi(T1, T0, 0);
        a.addi(T2, T0, 0);
        a.slti(T3, T0, 1000);
        a.bne(T3, ZERO, head);
        a.halt();
        let mut b = BranchBehavior::new();
        let mut vm = Vm::new(a.assemble().unwrap());
        vm.run(&mut b, 100_000).unwrap();
        // 5-instruction loop ending in a branch.
        assert!((b.avg_basic_block() - 5.0).abs() < 0.1, "{}", b.avg_basic_block());
    }

    #[test]
    fn extended_suite_produces_57_sane_values() {
        let mut a = Asm::new();
        let head = a.label();
        a.li(T0, 0);
        a.li(T2, 0x9000);
        a.bind(head);
        a.ld8(T3, T2, 0);
        a.addi(T2, T2, 8);
        a.andi(T2, T2, 0x90ff); // wrap within a small buffer: reuse!
        a.addi(T0, T0, 1);
        a.slti(T1, T0, 5000);
        a.bne(T1, ZERO, head);
        a.halt();
        let mut s = ExtendedSuite::new();
        let mut vm = Vm::new(a.assemble().unwrap());
        vm.run(&mut s, 100_000).unwrap();
        let all = s.finish_all();
        assert_eq!(all.len(), 57);
        for (i, v) in all.iter().enumerate() {
            assert!(v.is_finite() && *v >= 0.0, "metric {i}: {v}");
        }
        // The wrapped buffer is 256 bytes = 8 blocks: all reuses < 16.
        let ext = s.finish_extended();
        assert!(ext[4] > 0.9, "small-buffer reuse: {ext:?}");
        assert!(ext[3] < 0.05, "few cold accesses: {ext:?}");
    }
}

//! Register-traffic characterization (metrics 11–19).

use tinyisa::{DynInst, TraceSink};

/// The dependency-distance thresholds of Table II (metrics 13–19). The
/// distribution is cumulative: `P[distance <= k]`.
pub const DEP_DIST_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];


/// Measures register traffic (Franklin & Sohi style):
///
/// - **average number of input operands** per instruction (metric 11),
/// - **average degree of use**: how many times a register instance is read
///   between its production and the next write of the same register
///   (metric 12) — reads of a register that has no live producer yet are
///   not uses of any register *instance* and do not count here, though
///   they remain operands for metric 11,
/// - the cumulative **register dependency distance** distribution — the
///   number of dynamic instructions between a register write and a read of
///   it (metrics 13–19).
#[derive(Debug, Clone)]
pub struct RegTraffic {
    /// Dynamic instruction index of each unified register's last producer,
    /// or `u64::MAX` when never written.
    producer: [u64; 64],
    index: u64,
    operand_count: u64,
    reg_reads: u64,
    reg_writes: u64,
    /// `dist_buckets[i]` counts reads with distance <= DEP_DIST_BUCKETS[i]
    /// (cumulative, so a distance of 1 increments every bucket).
    dist_buckets: [u64; 7],
    dist_total: u64,
}

impl Default for RegTraffic {
    fn default() -> Self {
        Self::new()
    }
}

impl RegTraffic {
    /// Create an empty analyzer.
    pub fn new() -> Self {
        RegTraffic {
            producer: [u64::MAX; 64],
            index: 0,
            operand_count: 0,
            reg_reads: 0,
            reg_writes: 0,
            dist_buckets: [0; 7],
            dist_total: 0,
        }
    }

    /// Metric 11: mean register input operands per instruction.
    pub fn avg_input_operands(&self) -> f64 {
        if self.index == 0 {
            0.0
        } else {
            self.operand_count as f64 / self.index as f64
        }
    }

    /// Metric 12: mean reads per register write (degree of use).
    pub fn avg_degree_of_use(&self) -> f64 {
        if self.reg_writes == 0 {
            0.0
        } else {
            self.reg_reads as f64 / self.reg_writes as f64
        }
    }

    /// Metrics 13–19: `P[dependency distance <= k]` for
    /// `DEP_DIST_BUCKETS` (1, 2, 4, 8, 16, 32, 64).
    pub fn dependency_distance_cdf(&self) -> [f64; 7] {
        if self.dist_total == 0 {
            return [0.0; 7];
        }
        let t = self.dist_total as f64;
        let mut out = [0.0; 7];
        for (o, &c) in out.iter_mut().zip(&self.dist_buckets) {
            *o = c as f64 / t;
        }
        out
    }
}

/// First cumulative bucket a dependency distance lands in: `BUCKET_OF[d]`
/// is the smallest `i` with `d <= DEP_DIST_BUCKETS[i]`, for `d` in
/// `1..=64` (index 0 is unused — a consumer always retires after its
/// producer, so distances start at 1).
const BUCKET_OF: [u8; 65] = {
    let mut t = [0u8; 65];
    let mut d = 1u64;
    while d <= 64 {
        let mut i = 0;
        while DEP_DIST_BUCKETS[i] < d {
            i += 1;
        }
        t[d as usize] = i as u8;
        d += 1;
    }
    t
};

impl TraceSink for RegTraffic {
    fn retire(&mut self, inst: &DynInst) {
        self.index += 1;
        for s in inst.sources() {
            self.operand_count += 1;
            let prod = self.producer[s.unified()];
            if prod != u64::MAX {
                // A read of a live register instance: counts for degree of
                // use (metric 12) and the dependency-distance distribution.
                self.reg_reads += 1;
                // Distance in dynamic instructions between producer and
                // consumer; adjacent instructions have distance 1.
                let dist = self.index - 1 - prod;
                self.dist_total += 1;
                for (b, &threshold) in self.dist_buckets.iter_mut().zip(&DEP_DIST_BUCKETS) {
                    if dist <= threshold {
                        *b += 1;
                    }
                }
            }
        }
        if let Some(d) = inst.dst {
            self.reg_writes += 1;
            self.producer[d.unified()] = self.index - 1;
        }
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        // Batch path: tally operands/reads/writes locally and bucket each
        // dependency distance once via the BUCKET_OF table into a
        // first-bucket histogram, folded into the cumulative distribution
        // at block end. The producer table itself is inherently sequential
        // and is updated in order, exactly as the reference path does.
        let mut operands = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut hist = [0u64; 7];
        let mut index = self.index;
        for inst in block {
            index += 1;
            for s in inst.sources() {
                operands += 1;
                let prod = self.producer[s.unified()];
                if prod != u64::MAX {
                    reads += 1;
                    let dist = index - 1 - prod;
                    if dist <= 64 {
                        hist[BUCKET_OF[dist as usize] as usize] += 1;
                    }
                }
            }
            if let Some(d) = inst.dst {
                writes += 1;
                self.producer[d.unified()] = index - 1;
            }
        }
        self.index = index;
        self.operand_count += operands;
        self.reg_reads += reads;
        self.reg_writes += writes;
        self.dist_total += reads;
        // Fold: a read first landing in bucket j belongs to every
        // cumulative bucket j..7.
        let mut acc = 0u64;
        for (b, h) in self.dist_buckets.iter_mut().zip(&hist) {
            acc += h;
            *b += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{InstClass, RegRef};

    fn inst(dst: Option<u8>, srcs: &[u8]) -> DynInst {
        let mut s = [None; 3];
        for (i, &r) in srcs.iter().enumerate() {
            s[i] = Some(RegRef::Int(r));
        }
        DynInst {
            pc: 0,
            class: InstClass::IntAlu,
            dst: dst.map(RegRef::Int),
            srcs: s,
            mem: None,
            ctrl: None,
        }
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let r = RegTraffic::new();
        assert_eq!(r.avg_input_operands(), 0.0);
        assert_eq!(r.avg_degree_of_use(), 0.0);
        assert_eq!(r.dependency_distance_cdf(), [0.0; 7]);
    }

    #[test]
    fn avg_inputs_counts_all_instructions() {
        let mut r = RegTraffic::new();
        r.retire(&inst(Some(1), &[])); // 0 operands
        r.retire(&inst(Some(2), &[1, 1])); // 2 operands
        assert_eq!(r.avg_input_operands(), 1.0);
    }

    #[test]
    fn degree_of_use_is_reads_per_write() {
        let mut r = RegTraffic::new();
        r.retire(&inst(Some(1), &[])); // write r1
        r.retire(&inst(Some(2), &[1])); // read r1, write r2
        r.retire(&inst(Some(3), &[1, 2])); // read r1, r2, write r3
        // 3 reads, 3 writes
        assert_eq!(r.avg_degree_of_use(), 1.0);
    }

    #[test]
    fn adjacent_dependence_has_distance_one() {
        let mut r = RegTraffic::new();
        r.retire(&inst(Some(1), &[]));
        r.retire(&inst(Some(2), &[1])); // distance 1
        let cdf = r.dependency_distance_cdf();
        assert_eq!(cdf, [1.0; 7]); // a distance-1 read is within all buckets
    }

    #[test]
    fn distance_buckets_are_cumulative_and_monotone() {
        let mut r = RegTraffic::new();
        r.retire(&inst(Some(1), &[])); // producer at index 0
        for _ in 0..9 {
            r.retire(&inst(Some(2), &[])); // 9 fillers
        }
        r.retire(&inst(Some(3), &[1])); // distance 10: in <=16, <=32, <=64 only
        let cdf = r.dependency_distance_cdf();
        assert_eq!(cdf[..4], [0.0; 4]); // <=1,2,4,8
        assert_eq!(cdf[4..], [1.0; 3]); // <=16,32,64
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn reads_before_any_write_are_not_counted_as_dependences() {
        let mut r = RegTraffic::new();
        r.retire(&inst(Some(2), &[7])); // r7 never produced
        assert_eq!(r.dependency_distance_cdf(), [0.0; 7]);
        assert_eq!(r.avg_input_operands(), 1.0); // still an operand
    }

    #[test]
    fn cold_register_reads_do_not_inflate_degree_of_use() {
        // Metric 12 counts reads per register *instance* (Franklin & Sohi);
        // a read of a never-written register has no producing instance and
        // must not count, or cold-start reads inflate the metric.
        let mut r = RegTraffic::new();
        r.retire(&inst(Some(1), &[7])); // r7 cold: not a use of an instance
        r.retire(&inst(None, &[1])); // r1 live: one real use
        assert_eq!(r.avg_degree_of_use(), 1.0, "1 live read / 1 write");
        assert_eq!(r.avg_input_operands(), 1.0, "both reads remain operands");
    }

    #[test]
    fn bucket_table_matches_the_cumulative_thresholds() {
        for d in 1u64..=64 {
            let expect = DEP_DIST_BUCKETS.iter().position(|&t| d <= t).unwrap();
            assert_eq!(BUCKET_OF[d as usize] as usize, expect, "distance {d}");
        }
    }
}

//! Interval (phase) characterization.
//!
//! The paper's related work ([16], [18]) exploits program *phase* behavior:
//! execution intervals with similar code behave similarly. [`PhaseProfiler`]
//! computes a full [`MicaVector`] per fixed-size instruction interval, so
//! phase structure can be observed microarchitecture-independently — e.g.
//! an FFT's butterfly stages vs its permutation pass, or a codec's
//! transform vs entropy-coding phases.

use crate::suite::CharacterizationSuite;
use crate::vector::MicaVector;
use tinyisa::{DynInst, TraceSink};

/// Computes one [`MicaVector`] per interval of `interval` retired
/// instructions.
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    interval: u64,
    in_interval: u64,
    current: CharacterizationSuite,
    phases: Vec<MicaVector>,
}

impl PhaseProfiler {
    /// Profiler with the given interval length (instructions).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        PhaseProfiler {
            interval,
            in_interval: 0,
            current: CharacterizationSuite::new(),
            phases: Vec::new(),
        }
    }

    /// The configured interval length.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Completed interval vectors so far.
    pub fn phases(&self) -> &[MicaVector] {
        &self.phases
    }

    /// Instructions observed in the (incomplete) current interval.
    pub fn partial_len(&self) -> u64 {
        self.in_interval
    }

    /// Finish, returning all completed intervals; a trailing partial
    /// interval is included only if it covers at least half the interval
    /// length (shorter tails are statistically unreliable).
    pub fn into_phases(mut self) -> Vec<MicaVector> {
        if self.in_interval * 2 >= self.interval {
            self.phases.push(self.current.finish());
        }
        self.phases
    }

    /// Euclidean distances between consecutive phase vectors after
    /// per-metric max-normalization — spikes locate phase changes.
    pub fn transition_profile(phases: &[MicaVector]) -> Vec<f64> {
        if phases.len() < 2 {
            return Vec::new();
        }
        let dims = phases[0].values().len();
        // Per-metric max over phases, for scale-free comparison.
        let mut max = vec![0.0f64; dims];
        for p in phases {
            for (m, v) in max.iter_mut().zip(p.values()) {
                *m = m.max(v.abs());
            }
        }
        phases
            .windows(2)
            .map(|w| {
                let mut d2 = 0.0;
                for (c, &m) in max.iter().enumerate().take(dims) {
                    if m > 0.0 {
                        let a = w[0].values()[c] / m;
                        let b = w[1].values()[c] / m;
                        d2 += (a - b) * (a - b);
                    }
                }
                d2.sqrt()
            })
            .collect()
    }
}

impl TraceSink for PhaseProfiler {
    fn retire(&mut self, inst: &DynInst) {
        self.current.retire(inst);
        self.in_interval += 1;
        if self.in_interval == self.interval {
            let done = std::mem::take(&mut self.current);
            self.phases.push(done.finish());
            self.in_interval = 0;
        }
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        // Split the block at interval boundaries so each sub-slice lands
        // entirely inside one interval — intervals close at exactly the
        // same instruction as on the per-instruction path.
        let mut rest = block;
        while !rest.is_empty() {
            let room = self.interval - self.in_interval;
            let take =
                if room < rest.len() as u64 { room as usize } else { rest.len() };
            let (chunk, next) = rest.split_at(take);
            self.current.retire_block(chunk);
            self.in_interval += take as u64;
            if self.in_interval == self.interval {
                let done = std::mem::take(&mut self.current);
                self.phases.push(done.finish());
                self.in_interval = 0;
            }
            rest = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{regs::*, Asm, Vm};

    /// A two-phase program: a store-heavy integer loop, then an FP loop.
    fn two_phase_vm(iters: i64) -> Vm {
        let mut a = Asm::new();
        let (p1, p2, done) = (a.label(), a.label(), a.label());
        a.li(T0, 0);
        a.li(T2, 0x9000);
        a.bind(p1);
        a.st8(T0, T2, 0);
        a.addi(T2, T2, 8);
        a.addi(T0, T0, 1);
        a.slti(T1, T0, iters);
        a.bne(T1, ZERO, p1);
        a.li(T0, 0);
        a.bind(p2);
        a.fadd(F1, F0, F0);
        a.fmul(F2, F1, F1);
        a.addi(T0, T0, 1);
        a.slti(T1, T0, iters);
        a.bne(T1, ZERO, p2);
        a.jmp(done);
        a.bind(done);
        a.halt();
        Vm::new(a.assemble().unwrap())
    }

    #[test]
    fn intervals_have_expected_count() {
        let mut p = PhaseProfiler::new(1000);
        two_phase_vm(2000).run(&mut p, 100_000).unwrap();
        // 2000 iterations x 5 insts x 2 phases ~ 20k instructions.
        let phases = p.into_phases();
        assert!((19..=21).contains(&phases.len()), "{}", phases.len());
    }

    #[test]
    fn phase_change_is_visible_in_transitions() {
        let mut p = PhaseProfiler::new(500);
        two_phase_vm(1000).run(&mut p, 100_000).unwrap();
        let phases = p.into_phases();
        let trans = PhaseProfiler::transition_profile(&phases);
        // The largest transition should dwarf the median: a real phase
        // change against steady-state noise.
        let mut sorted = trans.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let max = sorted[sorted.len() - 1];
        assert!(max > 5.0 * (median + 1e-9), "max {max} vs median {median}: {trans:?}");
    }

    #[test]
    fn steady_state_has_flat_transitions() {
        let mut a = Asm::new();
        let head = a.label();
        a.bind(head);
        a.addi(T0, T0, 1);
        a.jmp(head);
        let mut p = PhaseProfiler::new(500);
        Vm::new(a.assemble().unwrap()).run(&mut p, 10_000).unwrap();
        let phases = p.into_phases();
        for t in PhaseProfiler::transition_profile(&phases).iter().skip(1) {
            assert!(*t < 0.5, "steady loop should have no phase changes: {t}");
        }
    }

    #[test]
    fn short_tail_is_dropped_long_tail_is_kept() {
        let mut p = PhaseProfiler::new(1000);
        for _ in 0..2300 {
            p.retire(&tinyisa::DynInst {
                pc: 0,
                class: tinyisa::InstClass::IntAlu,
                dst: None,
                srcs: [None; 3],
                mem: None,
                ctrl: None,
            });
        }
        assert_eq!(p.phases().len(), 2);
        assert_eq!(p.partial_len(), 300);
        assert_eq!(p.into_phases().len(), 2, "300 < half interval: dropped");

        let mut p = PhaseProfiler::new(1000);
        for _ in 0..2600 {
            p.retire(&tinyisa::DynInst {
                pc: 0,
                class: tinyisa::InstClass::IntAlu,
                dst: None,
                srcs: [None; 3],
                mem: None,
                ctrl: None,
            });
        }
        assert_eq!(p.into_phases().len(), 3, "600 >= half interval: kept");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = PhaseProfiler::new(0);
    }
}

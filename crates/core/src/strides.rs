//! Data-stream-stride characterization (metrics 24–43).

use std::collections::HashMap;
use tinyisa::{DynInst, TraceSink};

/// The cumulative stride thresholds of Table II: the first bucket is the
/// probability of a stride of exactly 0; the rest are `P[|stride| <= k]`.
pub const STRIDE_BUCKETS: [u64; 5] = [0, 8, 64, 512, 4096];

/// One cumulative stride distribution.
#[derive(Debug, Default, Clone)]
struct StrideDist {
    buckets: [u64; 5],
    total: u64,
}

impl StrideDist {
    fn record(&mut self, stride: u64) {
        self.total += 1;
        for (b, &threshold) in self.buckets.iter_mut().zip(&STRIDE_BUCKETS) {
            if stride <= threshold {
                *b += 1;
            }
        }
    }

    /// Batch-path record: find the first cumulative bucket by binary search
    /// over the threshold table and bump the suffix, instead of testing all
    /// five thresholds. Counts are identical to [`StrideDist::record`].
    fn record_indexed(&mut self, stride: u64) {
        self.total += 1;
        let first = STRIDE_BUCKETS.partition_point(|&t| t < stride);
        for b in &mut self.buckets[first..] {
            *b += 1;
        }
    }

    fn cdf(&self) -> [f64; 5] {
        if self.total == 0 {
            return [0.0; 5];
        }
        let t = self.total as f64;
        let mut out = [0.0; 5];
        for (o, &c) in out.iter_mut().zip(&self.buckets) {
            *o = c as f64 / t;
        }
        out
    }
}

/// Measures local and global data strides, separately for loads and stores
/// (metrics 24–43 of Table II).
///
/// A **global** stride is the absolute address difference between temporally
/// adjacent memory accesses of the same kind (load→load, store→store). A
/// **local** stride is the same but restricted to accesses issued by a single
/// static instruction (tracked per PC, as ATOM tracks per memory operation).
/// The first access of a stream produces no stride.
#[derive(Debug, Default, Clone)]
pub struct StrideAnalyzer {
    last_global_load: Option<u64>,
    last_global_store: Option<u64>,
    last_local_load: HashMap<u64, u64>,
    last_local_store: HashMap<u64, u64>,
    local_load: StrideDist,
    global_load: StrideDist,
    local_store: StrideDist,
    global_store: StrideDist,
}

impl StrideAnalyzer {
    /// Create an empty analyzer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Metrics 24–28: local load stride CDF.
    pub fn local_load_cdf(&self) -> [f64; 5] {
        self.local_load.cdf()
    }

    /// Metrics 29–33: global load stride CDF.
    pub fn global_load_cdf(&self) -> [f64; 5] {
        self.global_load.cdf()
    }

    /// Metrics 34–38: local store stride CDF.
    pub fn local_store_cdf(&self) -> [f64; 5] {
        self.local_store.cdf()
    }

    /// Metrics 39–43: global store stride CDF.
    pub fn global_store_cdf(&self) -> [f64; 5] {
        self.global_store.cdf()
    }

    /// All 20 stride metrics in Table II order.
    pub fn all(&self) -> [f64; 20] {
        let mut out = [0.0; 20];
        out[0..5].copy_from_slice(&self.local_load_cdf());
        out[5..10].copy_from_slice(&self.global_load_cdf());
        out[10..15].copy_from_slice(&self.local_store_cdf());
        out[15..20].copy_from_slice(&self.global_store_cdf());
        out
    }
}

impl TraceSink for StrideAnalyzer {
    fn retire(&mut self, inst: &DynInst) {
        let Some(m) = inst.mem else { return };
        if m.is_store {
            if let Some(prev) = self.last_global_store.replace(m.addr) {
                self.global_store.record(prev.abs_diff(m.addr));
            }
            if let Some(prev) = self.last_local_store.insert(inst.pc, m.addr) {
                self.local_store.record(prev.abs_diff(m.addr));
            }
        } else {
            if let Some(prev) = self.last_global_load.replace(m.addr) {
                self.global_load.record(prev.abs_diff(m.addr));
            }
            if let Some(prev) = self.last_local_load.insert(inst.pc, m.addr) {
                self.local_load.record(prev.abs_diff(m.addr));
            }
        }
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        // Batch path: keep the global last-address cursors in locals across
        // the block and use indexed bucket updates. The per-PC maps are
        // inherently sequential and updated in order, as the reference
        // path does.
        let mut last_load = self.last_global_load;
        let mut last_store = self.last_global_store;
        for inst in block {
            let Some(m) = inst.mem else { continue };
            if m.is_store {
                if let Some(prev) = last_store.replace(m.addr) {
                    self.global_store.record_indexed(prev.abs_diff(m.addr));
                }
                if let Some(prev) = self.last_local_store.insert(inst.pc, m.addr) {
                    self.local_store.record_indexed(prev.abs_diff(m.addr));
                }
            } else {
                if let Some(prev) = last_load.replace(m.addr) {
                    self.global_load.record_indexed(prev.abs_diff(m.addr));
                }
                if let Some(prev) = self.last_local_load.insert(inst.pc, m.addr) {
                    self.local_load.record_indexed(prev.abs_diff(m.addr));
                }
            }
        }
        self.last_global_load = last_load;
        self.last_global_store = last_store;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyisa::{InstClass, MemAccess};

    fn access(pc: u64, addr: u64, is_store: bool) -> DynInst {
        DynInst {
            pc,
            class: if is_store { InstClass::Store } else { InstClass::Load },
            dst: None,
            srcs: [None; 3],
            mem: Some(MemAccess { addr, size: 8, is_store }),
            ctrl: None,
        }
    }

    #[test]
    fn first_access_produces_no_stride() {
        let mut s = StrideAnalyzer::new();
        s.retire(&access(0x100, 0x8000, false));
        assert_eq!(s.global_load_cdf(), [0.0; 5]);
        assert_eq!(s.local_load_cdf(), [0.0; 5]);
    }

    #[test]
    fn unit_stride_loads() {
        let mut s = StrideAnalyzer::new();
        for i in 0..100 {
            s.retire(&access(0x100, 0x8000 + i * 8, false));
        }
        let local = s.local_load_cdf();
        assert_eq!(local[0], 0.0); // stride 8, not 0
        assert_eq!(local[1..], [1.0; 4]); // all <= 8
        assert_eq!(s.global_load_cdf(), local); // single instruction: same
    }

    #[test]
    fn zero_stride_detected() {
        let mut s = StrideAnalyzer::new();
        for _ in 0..10 {
            s.retire(&access(0x100, 0x9000, true));
        }
        assert_eq!(s.local_store_cdf(), [1.0; 5]);
        assert_eq!(s.global_store_cdf(), [1.0; 5]);
    }

    #[test]
    fn local_vs_global_differ_with_interleaving() {
        let mut s = StrideAnalyzer::new();
        // Two instructions alternately accessing two distant arrays, each
        // with unit (8-byte) local stride. Global strides are huge.
        for i in 0..50 {
            s.retire(&access(0x100, 0x1_0000 + i * 8, false));
            s.retire(&access(0x200, 0x90_0000 + i * 8, false));
        }
        let local = s.local_load_cdf();
        let global = s.global_load_cdf();
        assert!(local[1] > 0.95, "local strides are small: {local:?}");
        assert!(global[4] < 0.05, "global strides are large: {global:?}");
    }

    #[test]
    fn loads_and_stores_tracked_separately() {
        let mut s = StrideAnalyzer::new();
        s.retire(&access(0x100, 0x8000, false));
        s.retire(&access(0x200, 0xf000_0000, true));
        s.retire(&access(0x100, 0x8008, false));
        // The intervening store must not perturb the load stride stream.
        assert_eq!(s.global_load_cdf()[1], 1.0);
        assert_eq!(s.global_store_cdf(), [0.0; 5]); // single store, no stride
    }

    #[test]
    fn indexed_record_matches_reference_record() {
        let mut by_scan = StrideDist::default();
        let mut by_index = StrideDist::default();
        // Every threshold, its neighbors, and some far-out strides.
        for &s in &[0u64, 1, 7, 8, 9, 63, 64, 65, 511, 512, 513, 4095, 4096, 4097, u64::MAX] {
            by_scan.record(s);
            by_index.record_indexed(s);
        }
        assert_eq!(by_scan.buckets, by_index.buckets);
        assert_eq!(by_scan.total, by_index.total);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut s = StrideAnalyzer::new();
        for i in 0..1000u64 {
            s.retire(&access(0x100, (i * i * 37) % 100_000, false));
        }
        let cdf = s.global_load_cdf();
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }
}

//! Branch-predictability characterization via Prediction by Partial
//! Matching (metrics 44–47).

use std::collections::HashMap;
use tinyisa::{DynInst, TraceSink};

/// Default maximum PPM context order (history bits). The ablation benchmark
/// varies this; the characterization uses the default.
pub const DEFAULT_MAX_ORDER: usize = 8;

/// The four PPM predictor variants of the paper.
///
/// Following the two-level-predictor naming of Yeh & Patt that the paper
/// adopts: the first letter selects the history register (**G**lobal — one
/// shared outcome history — or **P**er-address, one history per static
/// branch); the last letter selects the pattern tables (**g**lobal — shared
/// by all branches — or **s**eparate tables per branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PpmVariant {
    GAg,
    PAg,
    GAs,
    PAs,
}

impl PpmVariant {
    /// All four variants in Table II order.
    pub const ALL: [PpmVariant; 4] = [PpmVariant::GAg, PpmVariant::PAg, PpmVariant::GAs, PpmVariant::PAs];

    fn per_address_history(self) -> bool {
        matches!(self, PpmVariant::PAg | PpmVariant::PAs)
    }

    fn per_branch_tables(self) -> bool {
        matches!(self, PpmVariant::GAs | PpmVariant::PAs)
    }
}

impl std::fmt::Display for PpmVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PpmVariant::GAg => "GAg",
            PpmVariant::PAg => "PAg",
            PpmVariant::GAs => "GAs",
            PpmVariant::PAs => "PAs",
        };
        f.write_str(s)
    }
}

/// A theoretical Prediction-by-Partial-Matching branch predictor
/// (Chen, Coffey & Mudge).
///
/// Maintains frequency tables for every context order from `max_order` down
/// to 0 and predicts with the longest context that has been seen before,
/// falling back to shorter contexts (the compression-model "escape"). The
/// reported **accuracy** — the fraction of conditional branches predicted
/// correctly — is the microarchitecture-independent branch-predictability
/// characteristic: PPM is a theoretical upper bound, not a hardware design.
#[derive(Debug, Clone)]
pub struct PpmPredictor {
    variant: PpmVariant,
    max_order: usize,
    global_hist: u64,
    local_hist: HashMap<u64, u64>,
    /// One table per order; keyed by (branch pc or 0, masked history).
    tables: Vec<HashMap<(u64, u64), [u32; 2]>>,
    correct: u64,
    total: u64,
}

impl PpmPredictor {
    /// Predictor with the default maximum order.
    pub fn new(variant: PpmVariant) -> Self {
        Self::with_max_order(variant, DEFAULT_MAX_ORDER)
    }

    /// Predictor with a custom maximum context order (history bits).
    ///
    /// # Panics
    ///
    /// Panics if `max_order > 32`.
    pub fn with_max_order(variant: PpmVariant, max_order: usize) -> Self {
        assert!(max_order <= 32, "PPM order above 32 is not supported");
        PpmPredictor {
            variant,
            max_order,
            global_hist: 0,
            local_hist: HashMap::new(),
            tables: vec![HashMap::new(); max_order + 1],
            correct: 0,
            total: 0,
        }
    }

    /// The configured variant.
    pub fn variant(&self) -> PpmVariant {
        self.variant
    }

    /// Conditional branches observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of conditional branches predicted correctly, in `[0, 1]`.
    /// Returns 1.0 for a trace without conditional branches (trivially
    /// predictable).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    fn key(&self, order: usize, pc: u64, hist: u64) -> (u64, u64) {
        // Shift-safe for any order: `1u64 << 64` would be UB-shaped (debug
        // panic, release wrap to mask 0). Construction rejects orders
        // above 32, but the mask must not silently corrupt keys if that
        // bound ever moves.
        let masked = match order {
            0 => 0,
            o if o >= 64 => hist,
            o => hist & ((1u64 << o) - 1),
        };
        let table_pc = if self.variant.per_branch_tables() { pc } else { 0 };
        (table_pc, masked)
    }

    /// Feed one conditional branch outcome; returns whether the prediction
    /// was correct.
    pub fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let hist = if self.variant.per_address_history() {
            *self.local_hist.entry(pc).or_insert(0)
        } else {
            self.global_hist
        };

        // Predict with the longest matching context; escape downwards.
        let mut prediction = true; // static default for a never-seen branch
        for order in (0..=self.max_order).rev() {
            let key = self.key(order, pc, hist);
            if let Some(&[nt, t]) = self.tables[order].get(&key) {
                if nt + t > 0 {
                    prediction = t >= nt;
                    break;
                }
            }
        }

        let correct = prediction == taken;
        self.total += 1;
        if correct {
            self.correct += 1;
        }

        // Update the frequency counts at every order.
        for order in 0..=self.max_order {
            let key = self.key(order, pc, hist);
            let entry = self.tables[order].entry(key).or_insert([0, 0]);
            entry[taken as usize] = entry[taken as usize].saturating_add(1);
        }

        // Shift the outcome into the history register(s).
        let new_hist = (hist << 1) | taken as u64;
        if self.variant.per_address_history() {
            self.local_hist.insert(pc, new_hist);
        } else {
            self.global_hist = new_hist;
        }
        correct
    }

    /// Feed a run of conditional-branch outcomes, in order — the batch
    /// path's entry point. [`CharacterizationSuite`](crate::CharacterizationSuite)
    /// extracts the branches of a block once and feeds all four predictors
    /// from the same scratch buffer.
    pub fn observe_block(&mut self, outcomes: &[(u64, bool)]) {
        for &(pc, taken) in outcomes {
            self.observe(pc, taken);
        }
    }
}

impl TraceSink for PpmPredictor {
    fn retire(&mut self, inst: &DynInst) {
        if let Some(ctrl) = inst.ctrl {
            if ctrl.conditional {
                self.observe(inst.pc, ctrl.taken);
            }
        }
    }

    fn retire_block(&mut self, block: &[DynInst]) {
        // Conditional branches are sparse in most blocks; skim them out
        // without the per-instruction virtual hop.
        for inst in block {
            if let Some(ctrl) = inst.ctrl {
                if ctrl.conditional {
                    self.observe(inst.pc, ctrl.taken);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_branch_is_learned() {
        for v in PpmVariant::ALL {
            let mut p = PpmPredictor::new(v);
            for _ in 0..1000 {
                p.observe(0x100, true);
            }
            assert!(p.accuracy() > 0.99, "{v}: {}", p.accuracy());
        }
    }

    #[test]
    fn alternating_pattern_is_learned() {
        for v in PpmVariant::ALL {
            let mut p = PpmPredictor::new(v);
            let mut correct_late = 0;
            for i in 0..2000 {
                let c = p.observe(0x100, i % 2 == 0);
                if i >= 1000 && c {
                    correct_late += 1;
                }
            }
            assert!(correct_late > 990, "{v} should learn T/NT alternation: {correct_late}");
        }
    }

    #[test]
    fn long_periodic_pattern_needs_history() {
        // Period-6 pattern TTTTTN: learnable with order >= 6.
        let mut p = PpmPredictor::with_max_order(PpmVariant::GAg, 8);
        let mut correct_late = 0;
        for i in 0..6000 {
            let c = p.observe(0x100, i % 6 != 5);
            if i >= 3000 && c {
                correct_late += 1;
            }
        }
        assert!(correct_late > 2900, "periodic pattern should be learned: {correct_late}");
    }

    #[test]
    fn random_outcomes_are_hard() {
        // A pseudo-random sequence should sit near 50% for every variant.
        let mut x = 0x12345678u64;
        let mut outcomes = Vec::new();
        for _ in 0..20_000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            outcomes.push(x & 1 == 1);
        }
        for v in PpmVariant::ALL {
            let mut p = PpmPredictor::new(v);
            for &t in &outcomes {
                p.observe(0x100, t);
            }
            assert!(
                (p.accuracy() - 0.5).abs() < 0.05,
                "{v} on random outcomes: {}",
                p.accuracy()
            );
        }
    }

    #[test]
    fn per_address_history_separates_interleaved_branches() {
        // Two branches with opposite constant behavior, interleaved. With
        // per-branch tables (or per-branch history) both are trivial; GAg
        // also learns the global alternation here. The interesting check is
        // that PAs is essentially perfect.
        let mut p = PpmPredictor::new(PpmVariant::PAs);
        for _ in 0..1000 {
            p.observe(0x100, true);
            p.observe(0x200, false);
        }
        assert!(p.accuracy() > 0.99);
    }

    #[test]
    fn gag_confused_by_aliasing_where_gas_is_not() {
        // Two branches: one always taken, one random-ish. With shared
        // tables and shared history, the noisy branch pollutes the quiet
        // one's contexts; per-branch tables isolate them.
        let mut x = 0x9e3779b9u64;
        let mut gag = PpmPredictor::new(PpmVariant::GAg);
        let mut gas = PpmPredictor::new(PpmVariant::GAs);
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let noisy = x & 1 == 1;
            for p in [&mut gag, &mut gas] {
                p.observe(0x100, true);
                p.observe(0x200, noisy);
            }
        }
        assert!(gas.accuracy() >= gag.accuracy() - 0.01);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn order_64_is_rejected_at_construction() {
        // `1u64 << 64` in the key mask would be UB-shaped; such predictors
        // must never exist.
        let _ = PpmPredictor::with_max_order(PpmVariant::GAg, 64);
    }

    #[test]
    fn max_supported_order_works_end_to_end() {
        let mut p = PpmPredictor::with_max_order(PpmVariant::PAs, 32);
        for i in 0..500 {
            p.observe(0x100, i % 3 == 0);
        }
        assert_eq!(p.total(), 500);
        assert!(p.accuracy() > 0.5, "{}", p.accuracy());
    }

    #[test]
    fn no_branches_means_perfectly_predictable() {
        let p = PpmPredictor::new(PpmVariant::GAg);
        assert_eq!(p.accuracy(), 1.0);
    }

    #[test]
    fn only_conditional_branches_are_scored() {
        use tinyisa::{CtrlInfo, InstClass};
        let mut p = PpmPredictor::new(PpmVariant::GAg);
        let jump = DynInst {
            pc: 0x50,
            class: InstClass::Jump,
            dst: None,
            srcs: [None; 3],
            mem: None,
            ctrl: Some(CtrlInfo { taken: true, target: 0x100, conditional: false }),
        };
        p.retire(&jump);
        assert_eq!(p.total(), 0);
    }
}

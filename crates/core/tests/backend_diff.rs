//! Differential verification of analyzer backends.
//!
//! The batch delivery tier (`retire_block`) exists purely as an
//! optimization: every way of delivering one dynamic instruction stream to
//! the analyzers must leave **bit-identical** state behind. This harness
//! pins that contract three ways:
//!
//! 1. all 122 zoo kernels, live per-instruction (ref) vs live batched vs
//!    recorded-trace replays at several block sizes;
//! 2. randomized instruction streams (including adversarial addresses at
//!    the top of the address space) through the same delivery matrix,
//!    covering [`CharacterizationSuite`], [`ExtendedSuite`] and
//!    [`PhaseProfiler`];
//! 3. the quarantine interaction: a kernel panicking under `MICA_FAULTS`
//!    must quarantine identically under both backends, and the surviving
//!    [`ProfileSet`]s must serialize byte-identically.
//!
//! Future backends register in [`DELIVERIES`] (trace-driven tiers) or get
//! compared through [`mica_experiments::profile::profile_all_with`]; every
//! test below runs the whole registry.

use mica_core::{CharacterizationSuite, ExtendedSuite, MicaVector, PerInst, PhaseProfiler};
use mica_workloads::benchmark_table;
use tinyisa::{CtrlInfo, DynInst, InstClass, MemAccess, RegRef, Trace, TraceRecorder, TraceSink};

/// Per-kernel budget. 10 000 instructions is the profiling floor
/// (`MICA_SCALE` tiny), enough to exercise every analyzer on every kernel
/// while the full 122-benchmark matrix stays fast.
const BUDGET: u64 = 10_000;

/// The registry of trace-driven delivery tiers. Each entry replays a
/// recorded trace into a sink; the first is the per-instruction reference
/// everything else is compared against. A new backend is one line here.
const DELIVERIES: &[(&str, fn(&Trace, &mut dyn TraceSink))] = &[
    ("per-inst", |t, s| t.replay(s)),
    ("blocks-1", |t, s| t.replay_blocks(s, 1)),
    ("blocks-7", |t, s| t.replay_blocks(s, 7)),
    ("blocks-256", |t, s| t.replay_blocks(s, 256)),
    ("blocks-whole-trace", |t, s| t.replay_blocks(s, usize::MAX)),
];

/// Bit-level equality: `==` on f64 would let `-0.0 == 0.0` or two NaNs
/// slip through; the artifact files serialize bits.
fn assert_bits_eq(reference: &MicaVector, got: &MicaVector, ctx: &str) {
    assert_eq!(reference.values().len(), got.values().len(), "{ctx}: metric count");
    for (i, (r, g)) in reference.values().iter().zip(got.values()).enumerate() {
        assert_eq!(
            r.to_bits(),
            g.to_bits(),
            "{ctx}: metric {i} diverges: ref {r} vs {g}"
        );
    }
}

fn suite_vector_of(trace: &Trace, deliver: fn(&Trace, &mut dyn TraceSink)) -> MicaVector {
    let mut suite = CharacterizationSuite::new();
    deliver(trace, &mut suite);
    suite.finish()
}

#[test]
fn all_zoo_kernels_are_bit_identical_across_backends() {
    for spec in benchmark_table() {
        let name = spec.name();

        // Live per-instruction reference: the batch path is forced off by
        // the PerInst wrapper even though the VM delivers blocks.
        let mut ref_suite = CharacterizationSuite::new();
        let mut vm = spec.build_vm().expect("kernel assembles");
        vm.run(&mut PerInst(&mut ref_suite), BUDGET).expect("kernel runs");
        let reference = ref_suite.finish();

        // Live batched run.
        let mut batch_suite = CharacterizationSuite::new();
        let mut vm = spec.build_vm().expect("kernel assembles");
        vm.run(&mut batch_suite, BUDGET).expect("kernel runs");
        assert_eq!(
            ref_suite.total_instructions(),
            batch_suite.total_instructions(),
            "{name}: instruction counts"
        );
        assert_bits_eq(&reference, &batch_suite.finish(), &format!("{name}: live batch"));

        // Recorded trace through every registered delivery tier.
        let mut rec = TraceRecorder::new();
        let mut vm = spec.build_vm().expect("kernel assembles");
        vm.run(&mut rec, BUDGET).expect("kernel runs");
        let trace = rec.into_trace();
        assert_eq!(trace.len() as u64, ref_suite.total_instructions(), "{name}: trace length");
        for (tier, deliver) in DELIVERIES {
            let got = suite_vector_of(&trace, *deliver);
            assert_bits_eq(&reference, &got, &format!("{name}: {tier}"));
        }
    }
}

#[test]
fn extended_and_phase_profiles_survive_batching() {
    // A cross-section of the zoo: one kernel per suite is plenty — the
    // full matrix above already covers the 47-metric suite everywhere.
    let mut seen = std::collections::HashSet::new();
    for spec in benchmark_table() {
        if !seen.insert(spec.suite.to_string()) {
            continue;
        }
        let name = spec.name();
        let mut rec = TraceRecorder::new();
        let mut vm = spec.build_vm().expect("kernel assembles");
        vm.run(&mut rec, BUDGET).expect("kernel runs");
        let trace = rec.into_trace();

        let mut ext_ref = ExtendedSuite::new();
        trace.replay(&mut ext_ref);
        let mut phase_ref = PhaseProfiler::new(977);
        trace.replay(&mut phase_ref);
        let ref_phases = phase_ref.into_phases();

        for (tier, deliver) in &DELIVERIES[1..] {
            let mut ext = ExtendedSuite::new();
            deliver(&trace, &mut ext);
            for (i, (r, g)) in ext_ref.finish_all().iter().zip(ext.finish_all()).enumerate() {
                assert_eq!(r.to_bits(), g.to_bits(), "{name}: {tier}: extended metric {i}");
            }

            let mut phase = PhaseProfiler::new(977);
            deliver(&trace, &mut phase);
            let phases = phase.into_phases();
            assert_eq!(ref_phases.len(), phases.len(), "{name}: {tier}: phase count");
            for (p, (r, g)) in ref_phases.iter().zip(&phases).enumerate() {
                assert_bits_eq(r, g, &format!("{name}: {tier}: phase {p}"));
            }
        }
    }
}

/// Build a pseudo-random but fully deterministic instruction stream from a
/// seed: a few dozen static PCs, loads/stores with strided and random
/// addresses (including the top of the address space, where the working
/// set used to overflow), conditional branches with mixed bias, and reads
/// of registers that never had a producer.
fn random_stream(seed: u64, len: usize) -> Vec<DynInst> {
    let mut x = seed | 1;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let r = step();
        let pc = 0x1000 + (r % 48) * 4;
        let class = match r % 10 {
            0 | 1 => InstClass::Load,
            2 => InstClass::Store,
            3 => InstClass::Branch,
            4 => InstClass::IntMul,
            5 => InstClass::Fp,
            _ => InstClass::IntAlu,
        };
        let dst = match step() % 4 {
            // Cold destination gaps: some registers are read-only below.
            0 => None,
            1 => Some(RegRef::Fp((step() % 16) as u8)),
            _ => Some(RegRef::Int((step() % 24) as u8)),
        };
        let srcs = [
            Some(RegRef::Int((step() % 32) as u8)),
            if step() % 3 == 0 { Some(RegRef::Int((step() % 32) as u8)) } else { None },
            None,
        ];
        let mem = match class {
            InstClass::Load | InstClass::Store => {
                let addr = match step() % 8 {
                    // The overflow corner: last bytes of the address space.
                    0 => u64::MAX - (step() % 16),
                    1 => step(), // fully random
                    _ => 0x2_0000 + (step() % 4096) * 8,
                };
                Some(MemAccess {
                    addr,
                    size: [0, 1, 2, 4, 8][(step() % 5) as usize],
                    is_store: class == InstClass::Store,
                })
            }
            _ => None,
        };
        let ctrl = if class == InstClass::Branch {
            Some(CtrlInfo { taken: step() % 3 != 0, target: pc + 8, conditional: true })
        } else if step() % 61 == 0 {
            Some(CtrlInfo { taken: true, target: 0x1000, conditional: false })
        } else {
            None
        };
        out.push(DynInst { pc, class, dst, srcs, mem, ctrl });
    }
    out
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(48))]

    #[test]
    fn randomized_streams_are_bit_identical_across_backends(
        seed in proptest::any::<u64>(),
        len in 1usize..700,
        block in 1usize..300,
    ) {
        let stream = random_stream(seed, len);
        let mut rec = TraceRecorder::new();
        for inst in &stream {
            rec.retire(inst);
        }
        let trace = rec.into_trace();

        let mut ref_suite = CharacterizationSuite::new();
        trace.replay(&mut ref_suite);
        let reference = ref_suite.finish();
        for (tier, deliver) in DELIVERIES {
            let got = suite_vector_of(&trace, *deliver);
            assert_bits_eq(&reference, &got, &format!("seed {seed}, len {len}, {tier}"));
        }

        // And at the sampled (odd, unaligned) block size, for all suites.
        let mut suite = CharacterizationSuite::new();
        trace.replay_blocks(&mut suite, block);
        assert_bits_eq(&reference, &suite.finish(), &format!("seed {seed}, blocks-{block}"));

        let mut ext_ref = ExtendedSuite::new();
        trace.replay(&mut ext_ref);
        let mut ext = ExtendedSuite::new();
        trace.replay_blocks(&mut ext, block);
        for (i, (r, g)) in ext_ref.finish_all().iter().zip(ext.finish_all()).enumerate() {
            proptest::prop_assert_eq!(
                r.to_bits(),
                g.to_bits(),
                "seed {}, blocks-{}: extended metric {}",
                seed,
                block,
                i
            );
        }

        let mut phase_ref = PhaseProfiler::new(53);
        trace.replay(&mut phase_ref);
        let mut phase = PhaseProfiler::new(53);
        trace.replay_blocks(&mut phase, block);
        let (a, b) = (phase_ref.into_phases(), phase.into_phases());
        proptest::prop_assert_eq!(a.len(), b.len());
        for (p, (r, g)) in a.iter().zip(&b).enumerate() {
            assert_bits_eq(r, g, &format!("seed {seed}, blocks-{block}: phase {p}"));
        }
    }
}

/// Adversarial partitions of [`Trace::replay_blocks`], pinned explicitly:
/// size 1 (every instruction is its own block), a size strictly greater
/// than the trace length (one giant delivery), and small odd sizes that
/// are guaranteed to split basic blocks mid-body (the zoo's loop bodies
/// are several instructions long, so size 3 lands a partition boundary
/// inside a basic block on every kernel). Each must leave the analyzers
/// bit-identical to **live** per-instruction execution — not merely to
/// each other, so a bug shared by every replay tier cannot hide.
#[test]
fn adversarial_partitions_match_live_execution() {
    for program in ["CRC32", "sha", "mcf"] {
        let spec = benchmark_table()
            .into_iter()
            .find(|s| s.program == program)
            .expect("kernel exists");
        let name = spec.name();

        let mut live = CharacterizationSuite::new();
        let mut vm = spec.build_vm().expect("kernel assembles");
        vm.run(&mut PerInst(&mut live), BUDGET).expect("kernel runs");
        let reference = live.finish();

        let mut rec = TraceRecorder::new();
        let mut vm = spec.build_vm().expect("kernel assembles");
        vm.run(&mut rec, BUDGET).expect("kernel runs");
        let trace = rec.into_trace();

        let len = trace.len();
        assert!(len > 3, "{name}: trace long enough to partition");
        for block_size in [1, 3, 5, len - 1, len, len + 1, 2 * len] {
            let mut suite = CharacterizationSuite::new();
            trace.replay_blocks(&mut suite, block_size);
            assert_bits_eq(
                &reference,
                &suite.finish(),
                &format!("{name}: adversarial partition size {block_size} vs live"),
            );
        }
    }
}

/// The quarantine interaction: panic isolation must not depend on the
/// delivery tier. A kernel that panics under the fault plan quarantines
/// identically under `ref` and `batch`, and the 121 survivors serialize
/// byte-identically.
#[test]
fn quarantine_is_identical_under_both_backends() {
    use mica_core::Backend;
    use mica_experiments::profile::profile_all_with;
    use mica_fault::plan::{self, FaultPlan};

    std::env::set_var("MICA_THREADS", "4");
    std::env::set_var("MICA_LOG", "off");

    plan::install(FaultPlan::parse("panic:kernel=CRC32").expect("plan parses"));
    let ref_run = profile_all_with(1e-9, Backend::Ref).expect("ref run completes");
    let batch_run = profile_all_with(1e-9, Backend::Batch).expect("batch run completes");
    plan::clear();

    assert_eq!(ref_run.quarantined.len(), 1, "{:?}", ref_run.quarantined);
    assert!(ref_run.quarantined[0].name.contains("CRC32"));
    assert_eq!(ref_run.quarantined, batch_run.quarantined, "same kernel, same reason");
    assert_eq!(ref_run.set.records.len(), batch_run.set.records.len());
    assert_eq!(
        serde_json::to_string(&ref_run.set).expect("serializes"),
        serde_json::to_string(&batch_run.set).expect("serializes"),
        "survivors must serialize byte-identically across backends"
    );
}

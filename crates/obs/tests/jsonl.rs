//! JSON-lines sink: every emitted record lands in the file as one valid,
//! schema-conforming JSON object per line, matching an in-memory capture
//! of the same dispatch stream.

use mica_obs::{add_sink, remove_sink, Attr, JsonLinesSink, Level, MemorySink};
use serde::Value;

/// Pin the environment before the first `mica-obs` call in this process:
/// no stderr noise, no accidental file sinks inherited from the caller.
fn init() {
    std::env::set_var("MICA_LOG", "off");
    std::env::remove_var("MICA_TRACE");
    std::env::remove_var("MICA_EVENTS");
}

fn field<'a>(v: &'a Value, name: &str) -> &'a Value {
    v.field(name).unwrap_or_else(|| panic!("field {name} missing in {v:?}"))
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::String(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::Number(n) => n.as_u64().expect("non-negative integer"),
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn file_round_trips_the_dispatch_stream() {
    init();
    let dir = std::env::temp_dir().join("mica_obs_jsonl_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.jsonl");

    let mem = MemorySink::new();
    let file_id = add_sink(Box::new(JsonLinesSink::create(path.clone()).unwrap()));
    let mem_id = add_sink(Box::new(mem.clone()));

    mica_obs::emit_with(
        Level::Warn,
        "jsonl::test",
        "cache rejected".into(),
        vec![("reason", Attr::Str("fingerprint".into())), ("expected", Attr::U64(42))],
    );
    mica_obs::info!("plain message with escapes: \"quoted\"\n");
    {
        let mut outer = mica_obs::span("jsonl-test", "outer");
        outer.attr("k", 8u64);
        let _inner = mica_obs::span("jsonl-test", "inner");
    }

    remove_sink(file_id);
    remove_sink(mem_id);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str::<Value>(l).expect("every line is valid JSON"))
        .collect();
    assert_eq!(
        lines.len(),
        mem.records().len() + 1,
        "file carries the capture sink's records plus one flush record"
    );

    // The terminating flush record proves the stream is complete and
    // carries the truncation counter mica-prof keys on.
    let flush = lines.last().expect("file is non-empty");
    assert_eq!(as_str(field(flush, "t")), "flush");
    assert_eq!(as_u64(field(flush, "events")), 2);
    assert_eq!(as_u64(field(flush, "spans")), 2);
    field(flush, "dropped_lines");
    assert!(
        lines[..lines.len() - 1].iter().all(|l| as_str(field(l, "t")) != "flush"),
        "exactly one flush record, and it is last"
    );

    let events: Vec<&Value> =
        lines.iter().filter(|l| as_str(field(l, "t")) == "event").collect();
    let spans: Vec<&Value> = lines.iter().filter(|l| as_str(field(l, "t")) == "span").collect();
    assert_eq!(events.len(), 2);
    assert_eq!(spans.len(), 2);

    // The structured warn event survives with level, target, message and
    // typed attributes intact.
    let warn = events[0];
    assert_eq!(as_str(field(warn, "level")), "warn");
    assert_eq!(as_str(field(warn, "target")), "jsonl::test");
    assert_eq!(as_str(field(warn, "msg")), "cache rejected");
    let attrs = field(warn, "attrs");
    assert_eq!(as_str(field(attrs, "reason")), "fingerprint");
    assert_eq!(as_u64(field(attrs, "expected")), 42);

    // Escapes round-trip through the hand-rolled writer.
    assert_eq!(as_str(field(events[1], "msg")), "plain message with escapes: \"quoted\"\n");

    // Spans close inner-first, carry depth/tid, and nest by timestamps.
    assert_eq!(as_str(field(spans[0], "name")), "inner");
    assert_eq!(as_str(field(spans[1], "name")), "outer");
    assert_eq!(as_str(field(spans[1], "cat")), "jsonl-test");
    assert_eq!(as_u64(field(spans[0], "depth")), as_u64(field(spans[1], "depth")) + 1);
    assert_eq!(as_u64(field(spans[0], "tid")), as_u64(field(spans[1], "tid")));
    let inner_end = as_u64(field(spans[0], "ts_us")) + as_u64(field(spans[0], "dur_us"));
    let outer_end = as_u64(field(spans[1], "ts_us")) + as_u64(field(spans[1], "dur_us"));
    assert!(as_u64(field(spans[0], "ts_us")) >= as_u64(field(spans[1], "ts_us")));
    assert!(inner_end <= outer_end);
    assert_eq!(as_u64(field(field(spans[1], "attrs"), "k")), 8);

    std::fs::remove_dir_all(dir).ok();
}

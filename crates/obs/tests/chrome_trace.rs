//! Chrome-trace exporter: the flushed file is one valid JSON document in
//! the Trace Event Format, with complete (`"X"`) events per span, instant
//! (`"i"`) events per log record, `thread_name` metadata for every worker
//! track, and well-formed interval nesting inside each track.

use mica_obs::{add_sink, remove_sink, ChromeTraceSink};
use serde::Value;

fn init() {
    std::env::set_var("MICA_LOG", "off");
    std::env::remove_var("MICA_TRACE");
    std::env::remove_var("MICA_EVENTS");
}

fn field<'a>(v: &'a Value, name: &str) -> &'a Value {
    v.field(name).unwrap_or_else(|| panic!("field {name} missing in {v:?}"))
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::String(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

fn as_u64(v: &Value) -> u64 {
    match v {
        Value::Number(n) => n.as_u64().expect("non-negative integer"),
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn trace_file_is_perfetto_shaped() {
    init();
    let dir = std::env::temp_dir().join("mica_obs_chrome_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");

    let id = add_sink(Box::new(ChromeTraceSink::create(path.clone())));

    // One span tree on the calling thread, plus four "pool workers" that
    // each produce a nested pair — the shape a par_map fan-out emits.
    {
        let _run = mica_obs::span("test", "run");
        mica_obs::warn!("marker event");
        std::thread::scope(|scope| {
            for w in 0..4usize {
                scope.spawn(move || {
                    mica_obs::set_worker(w);
                    let mut outer = mica_obs::span("test", format!("task-{w}"));
                    outer.attr("w", w as u64);
                    let _inner = mica_obs::span("test", "chunk");
                });
            }
        });
    }
    remove_sink(id);

    let doc: Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).expect("valid JSON");
    let events = field(&doc, "traceEvents").as_array().expect("traceEvents array");
    assert_eq!(as_str(field(&doc, "displayTimeUnit")), "ms");

    let metadata: Vec<&Value> =
        events.iter().filter(|e| as_str(field(e, "ph")) == "M").collect();
    let complete: Vec<&Value> =
        events.iter().filter(|e| as_str(field(e, "ph")) == "X").collect();
    let instants: Vec<&Value> =
        events.iter().filter(|e| as_str(field(e, "ph")) == "i").collect();
    assert_eq!(events.len(), metadata.len() + complete.len() + instants.len());

    // Process metadata plus a thread_name for every worker track.
    assert!(metadata.iter().any(|m| as_str(field(m, "name")) == "process_name"));
    for w in 0..4u64 {
        let named = metadata.iter().any(|m| {
            as_str(field(m, "name")) == "thread_name"
                && as_u64(field(m, "tid")) == 1 + w
                && as_str(field(field(m, "args"), "name")) == format!("worker-{w}")
        });
        assert!(named, "missing thread_name metadata for worker-{w}");
    }

    // 1 run span + 4 workers x (task + chunk) spans; 1 instant.
    assert_eq!(complete.len(), 9);
    assert_eq!(instants.len(), 1);
    assert_eq!(as_str(field(instants[0], "name")), "marker event");
    assert_eq!(as_str(field(field(instants[0], "args"), "level")), "warn");

    // Every complete event carries the mandatory fields; attrs survive.
    for x in &complete {
        assert_eq!(as_u64(field(x, "pid")), 1);
        field(x, "ts");
        field(x, "dur");
        field(x, "tid");
    }
    let task0 = complete
        .iter()
        .find(|x| as_str(field(x, "name")) == "task-0")
        .expect("task-0 span present");
    // Span args nest the user attrs beside the context ids.
    assert_eq!(as_u64(field(field(field(task0, "args"), "attrs"), "w")), 0);
    for x in &complete {
        let args = field(x, "args");
        field(args, "trace");
        let span_id = as_u64(field(args, "span"));
        assert_ne!(span_id, 0, "every span carries a nonzero span id");
        field(args, "parent");
    }

    // Per-track stack discipline: within each tid, intervals either nest
    // or are disjoint — never partially overlap. This is what makes the
    // trace render as clean per-worker lanes in Perfetto.
    let mut tids: Vec<u64> = complete.iter().map(|x| as_u64(field(x, "tid"))).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(tids.len() >= 5, "main track plus four worker tracks, got {tids:?}");
    for tid in tids {
        let mut intervals: Vec<(u64, u64)> = complete
            .iter()
            .filter(|x| as_u64(field(x, "tid")) == tid)
            .map(|x| {
                let ts = as_u64(field(x, "ts"));
                (ts, ts + as_u64(field(x, "dur")))
            })
            .collect();
        // Sort outermost-first so a stack check works: by start, then by
        // longer duration first.
        intervals.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for (start, end) in intervals {
            while let Some(&(_, top_end)) = stack.last() {
                if start >= top_end {
                    stack.pop();
                } else {
                    assert!(end <= top_end, "partial overlap on tid {tid}");
                    break;
                }
            }
            stack.push((start, end));
        }
    }

    std::fs::remove_dir_all(dir).ok();
}

//! Disabled observability is free of side effects: with `MICA_LOG=off` and
//! no sinks, no event or span is ever dispatched, span guards are inert,
//! and counters still accumulate (they are plain atomics, independent of
//! the sink machinery).

use mica_obs::{dispatch_totals, enabled, spans_enabled, Counter, Level};

static PROBE: Counter = Counter::new("test.overhead.probe");

#[test]
fn disabled_pipeline_dispatches_nothing() {
    // Must run before any other mica-obs call in this process so the lazy
    // env init sees the silenced configuration (hence a dedicated test
    // binary with a single test).
    std::env::set_var("MICA_LOG", "off");
    std::env::remove_var("MICA_TRACE");
    std::env::remove_var("MICA_EVENTS");

    assert!(!enabled(Level::Error));
    assert!(!enabled(Level::Trace));
    assert!(!spans_enabled());

    for i in 0..1_000u64 {
        mica_obs::info!("event {i}");
        mica_obs::error!("error {i}");
        let mut s = mica_obs::span("overhead", "work");
        s.attr("i", i);
        assert!(!s.is_recording());
        PROBE.incr();
    }

    assert_eq!(dispatch_totals(), (0, 0), "no record may reach the sink layer");
    assert_eq!(PROBE.get(), 1_000, "counters work even with logging off");
}

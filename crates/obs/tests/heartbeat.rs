//! The metrics heartbeat: a started heartbeat emits periodic `heartbeat`
//! events carrying every registered counter plus dispatch and allocation
//! totals — the progress signal long runs rely on.

use mica_obs::{add_sink, remove_sink, Attr, Counter, MemorySink};
use std::time::Duration;

fn init() {
    std::env::set_var("MICA_LOG", "off");
    std::env::remove_var("MICA_TRACE");
    std::env::remove_var("MICA_EVENTS");
    std::env::remove_var("MICA_METRICS_EVERY");
}

#[test]
fn heartbeat_emits_counter_snapshots() {
    init();
    static BEATS_SEEN_BY: Counter = Counter::new("obs.test.heartbeat.marker");
    BEATS_SEEN_BY.add(7);

    let mem = MemorySink::new();
    let id = add_sink(Box::new(mem.clone()));
    mica_obs::start_heartbeat(Duration::from_millis(20));

    // Generously outwait several periods; assert on "at least one beat"
    // so a slow CI machine cannot flake this.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let beats = loop {
        let beats: Vec<_> = mem
            .events()
            .into_iter()
            .filter(|e| e.target == "mica_obs::heartbeat")
            .collect();
        if !beats.is_empty() || std::time::Instant::now() > deadline {
            break beats;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    remove_sink(id);

    assert!(!beats.is_empty(), "no heartbeat arrived within 5s");
    let beat = &beats[0];
    assert_eq!(beat.message, "heartbeat");
    let attr = |name: &str| {
        beat.attrs
            .iter()
            .find(|(k, _)| *k == name)
            .unwrap_or_else(|| panic!("missing heartbeat attr {name}"))
            .1
            .clone()
    };
    assert_eq!(attr("obs.test.heartbeat.marker"), Attr::U64(7));
    assert!(matches!(attr("seq"), Attr::U64(s) if s >= 1));
    assert!(matches!(attr("dispatched_events"), Attr::U64(_)));
    assert!(matches!(attr("alloc_n"), Attr::U64(_)));
    assert!(matches!(attr("alloc_b"), Attr::U64(_)));
}

//! Request-scoped trace context, propagated across threads by `mica-par`.
//!
//! A [`TraceContext`] names one logical operation (a serve request, a
//! pipeline stage) with a process-unique `trace_id` and the `span_id` of
//! the innermost open span of that operation. The context lives in a
//! thread-local; [`span`](crate::span) reads it to stamp every
//! [`SpanRecord`](crate::SpanRecord) with `(trace_id, span_id,
//! parent_id)` and replaces it with its own ids for the span's scope, so
//! nesting falls out of ordinary RAII. Crossing a thread boundary is the
//! only manual step: capture [`current_context`] on the submitting
//! thread, [`install_context`] on the worker (the `mica-par` pool does
//! both, so `par_map` callers inherit propagation for free).
//!
//! Ids are plain `u64`s. `span_id`s come from one process-wide allocator
//! and are never reused; `trace_id`s mix a per-process seed (wall clock ⊕
//! address-space noise) with an allocation counter so two daemon restarts
//! do not collide in merged logs. `0` is reserved: a span outside any
//! context records `trace_id = 0` ("untraced") and `parent_id = 0`
//! ("root").

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The identity of one logical operation: which trace the current work
/// belongs to and which span is its immediate parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Process-unique id shared by every span of one operation. Never 0.
    pub trace_id: u64,
    /// The span new child spans should parent to. Never 0.
    pub span_id: u64,
}

/// Next span id; 0 is reserved for "no parent".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Trace ids allocated so far (mixed with the seed, below).
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // A stack address varies with ASLR — cheap extra entropy so two
        // processes started in the same nanosecond still diverge.
        let marker = 0u8;
        t ^ (std::ptr::addr_of!(marker) as u64).rotate_left(32)
    })
}

/// splitmix64 finalizer: a bijection on u64, so distinct inputs give
/// distinct (and well-scrambled) trace ids.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Allocate a process-unique span id (never 0).
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

impl TraceContext {
    /// A brand-new context for the root of an operation: fresh trace id,
    /// fresh span id. The caller owns emitting the matching root span
    /// (see [`emit_span_record`](crate::emit_span_record)).
    pub fn fresh() -> TraceContext {
        let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        let trace_id = mix(process_seed().wrapping_add(n)).max(1);
        TraceContext { trace_id, span_id: next_span_id() }
    }

    /// The trace id as the fixed-width lowercase hex string used in
    /// responses and logs (`"%016x"`).
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

/// The calling thread's current context, if any. Capture this before
/// handing work to another thread, then [`install_context`] it there.
pub fn current_context() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Install `ctx` as the calling thread's current context until the
/// returned guard drops (which restores whatever was current before).
/// Pass `None` to explicitly detach a scope from any ambient trace.
#[must_use = "the context is uninstalled when the guard drops"]
pub fn install_context(ctx: Option<TraceContext>) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard { prev }
}

/// RAII guard from [`install_context`]; restores the previous context on
/// drop. Guards must drop in LIFO order on a thread, like span guards.
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Swap in a child context for an opening span: the span inherits the
/// current trace (0 if none), parents to the current span (0 if none),
/// and becomes the current context itself. Returns
/// `(trace_id, span_id, parent_id, previous)` for the span to record and
/// restore.
pub(crate) fn enter_span() -> (u64, u64, u64, Option<TraceContext>) {
    let span_id = next_span_id();
    CURRENT.with(|c| {
        let prev = c.get();
        let (trace_id, parent_id) = match prev {
            Some(ctx) => (ctx.trace_id, ctx.span_id),
            None => (0, 0),
        };
        // A span outside any trace still installs itself (with trace 0)
        // so its children chain to it; the whole subtree stays connected
        // even when nobody minted a root context.
        c.set(Some(TraceContext { trace_id, span_id }));
        (trace_id, span_id, parent_id, prev)
    })
}

/// Restore the pre-span context when the span closes.
pub(crate) fn exit_span(prev: Option<TraceContext>) {
    CURRENT.with(|c| c.set(prev));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_contexts_are_distinct_and_nonzero() {
        let a = TraceContext::fresh();
        let b = TraceContext::fresh();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.span_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.span_id, b.span_id);
        assert_eq!(a.trace_hex().len(), 16);
    }

    #[test]
    fn install_restores_on_drop_and_nests() {
        assert_eq!(current_context(), None);
        let outer = TraceContext::fresh();
        {
            let _g = install_context(Some(outer));
            assert_eq!(current_context(), Some(outer));
            let inner = TraceContext::fresh();
            {
                let _g2 = install_context(Some(inner));
                assert_eq!(current_context(), Some(inner));
            }
            assert_eq!(current_context(), Some(outer));
            {
                let _g3 = install_context(None);
                assert_eq!(current_context(), None, "None detaches");
            }
            assert_eq!(current_context(), Some(outer));
        }
        assert_eq!(current_context(), None);
    }

    #[test]
    fn enter_span_chains_ids() {
        let root = TraceContext::fresh();
        let _g = install_context(Some(root));
        let (trace, span, parent, prev) = enter_span();
        assert_eq!(trace, root.trace_id);
        assert_eq!(parent, root.span_id);
        assert_ne!(span, root.span_id);
        assert_eq!(current_context(), Some(TraceContext { trace_id: trace, span_id: span }));
        exit_span(prev);
        assert_eq!(current_context(), Some(root));
    }

    #[test]
    fn enter_span_without_context_is_untraced_but_connected() {
        let _detach = install_context(None);
        let (trace, span, parent, prev) = enter_span();
        assert_eq!(trace, 0);
        assert_eq!(parent, 0);
        assert_ne!(span, 0);
        let (trace2, _span2, parent2, prev2) = enter_span();
        assert_eq!(trace2, 0);
        assert_eq!(parent2, span, "child chains to the untraced parent");
        exit_span(prev2);
        exit_span(prev);
    }
}

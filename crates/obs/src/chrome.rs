//! Chrome-trace exporter (`MICA_TRACE=out.json`).
//!
//! Emits the Trace Event Format understood by `chrome://tracing` and
//! Perfetto: spans as complete (`"ph":"X"`) events and leveled events as
//! instants (`"ph":"i"`), all under one pid with the logical thread id as
//! the track — so `par_map` fan-out renders as one lane per pool worker
//! (`worker-0`…`worker-N`) beside the `main` lane.
//!
//! Records are buffered in memory and the whole file (including
//! `thread_name` metadata for every tid seen) is rewritten on each
//! [`Sink::flush`], so a crash mid-run loses the trace but a normal run
//! pays no per-span I/O. The flush goes through `mica_fault::io` — a
//! temp-then-rename atomic write with bounded retry — so a reader never
//! observes a half-written trace; if the write still fails after the
//! retry budget, `obs.trace.dropped_events` counts what was lost.

use crate::{push_json_attrs, push_json_str, Counter, Event, Sink, SpanRecord};
use std::path::PathBuf;
use std::sync::Mutex;

/// Trace events lost because the final flush failed even after retries.
static DROPPED_EVENTS: Counter = Counter::new("obs.trace.dropped_events");

/// Buffering Chrome-trace writer; finalized by [`Sink::flush`].
pub struct ChromeTraceSink {
    path: PathBuf,
    /// Pre-rendered JSON objects, one per trace event.
    events: Mutex<Vec<String>>,
}

impl ChromeTraceSink {
    /// A sink that will write `path` at flush time (no I/O until then).
    pub fn create(path: PathBuf) -> ChromeTraceSink {
        ChromeTraceSink { path, events: Mutex::new(Vec::new()) }
    }
}

impl Sink for ChromeTraceSink {
    fn on_event(&self, event: &Event) {
        let mut obj = String::with_capacity(96 + event.message.len());
        obj.push_str("{\"name\":");
        push_json_str(&mut obj, &event.message);
        obj.push_str(",\"cat\":");
        push_json_str(&mut obj, event.target);
        obj.push_str(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
        obj.push_str(&event.ts_us.to_string());
        obj.push_str(",\"pid\":1,\"tid\":");
        obj.push_str(&event.tid.to_string());
        obj.push_str(",\"args\":{\"level\":\"");
        obj.push_str(event.level.lower());
        obj.push_str("\",\"attrs\":");
        push_json_attrs(&mut obj, &event.attrs);
        obj.push_str("}}");
        self.events.lock().expect("trace buffer poisoned").push(obj);
    }

    fn on_span(&self, span: &SpanRecord) {
        let mut obj = String::with_capacity(96 + span.name.len());
        obj.push_str("{\"name\":");
        push_json_str(&mut obj, &span.name);
        obj.push_str(",\"cat\":");
        push_json_str(&mut obj, span.cat);
        obj.push_str(",\"ph\":\"X\",\"ts\":");
        obj.push_str(&span.ts_us.to_string());
        obj.push_str(",\"dur\":");
        obj.push_str(&span.dur_us.to_string());
        obj.push_str(",\"pid\":1,\"tid\":");
        obj.push_str(&span.tid.to_string());
        // Context ids ride in args (the Trace Event Format has no
        // first-class span ids for "X" events): trace groups one
        // request's spans, span/parent rebuild the tree.
        obj.push_str(",\"args\":{\"trace\":");
        obj.push_str(&span.trace_id.to_string());
        obj.push_str(",\"span\":");
        obj.push_str(&span.span_id.to_string());
        obj.push_str(",\"parent\":");
        obj.push_str(&span.parent_id.to_string());
        obj.push_str(",\"attrs\":");
        push_json_attrs(&mut obj, &span.attrs);
        obj.push_str("}}");
        self.events.lock().expect("trace buffer poisoned").push(obj);
    }

    fn flush(&self) {
        let events = self.events.lock().expect("trace buffer poisoned");
        let mut out = String::with_capacity(events.iter().map(|e| e.len() + 2).sum::<usize>() + 512);
        out.push_str("{\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"mica\"}}",
        );
        for (tid, name) in crate::thread_names() {
            out.push_str(",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"name\":");
            push_json_str(&mut out, &name);
            out.push_str("}},{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"sort_index\":");
            out.push_str(&tid.to_string());
            out.push_str("}}");
        }
        for obj in events.iter() {
            out.push(',');
            out.push_str(obj);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        if let Err(e) = mica_fault::io::atomic_write_retry("obs.trace", &self.path, out.as_bytes())
        {
            DROPPED_EVENTS.add(events.len() as u64);
            eprintln!(
                "warning: cannot write trace file {}: {e} ({} events dropped)",
                self.path.display(),
                events.len()
            );
        }
    }
}

//! Periodic in-process metrics snapshots (`MICA_METRICS_EVERY`).
//!
//! Long profiling runs used to go dark between stage boundaries: the only
//! signal was the per-kernel info lines, and a wedged kernel produced
//! nothing at all. With `MICA_METRICS_EVERY=2s` (or `500ms`, or a bare
//! float meaning seconds) a detached thread wakes on that period and
//! emits one `heartbeat` event carrying every registered counter plus the
//! allocation totals — so a JSONL stream shows counter *trajectories*
//! over time, and `mica-prof` can plot progress or spot the moment a
//! counter stopped moving.
//!
//! The thread is a pure observer: it reads atomics and emits through the
//! normal dispatch (so a disabled pipeline costs nothing beyond the
//! sleep), and it dies with the process — flush-at-exit is still the
//! `Runner`'s job.

use crate::{Attr, Level};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Parse a `MICA_METRICS_EVERY` value: `250ms`, `2s`, or a bare number of
/// seconds (`1.5`). Returns `None` for anything unparsable or non-positive.
pub(crate) fn parse_period(s: &str) -> Option<Duration> {
    let s = s.trim();
    let (num, unit_ms) = if let Some(v) = s.strip_suffix("ms") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1000.0)
    } else {
        (s, 1000.0)
    };
    let value: f64 = num.trim().parse().ok()?;
    if !value.is_finite() || value <= 0.0 {
        return None;
    }
    // Floor at 10ms: a pathological period must not busy-spin the emitter.
    Some(Duration::from_millis(((value * unit_ms) as u64).max(10)))
}

/// Counter names arrive as `String` snapshots but event attrs need
/// `&'static str` keys; intern each distinct name once. Bounded by the
/// number of distinct counters, so the leak is a few hundred bytes.
fn static_name(name: String) -> &'static str {
    static INTERNED: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut table = INTERNED.lock().expect("heartbeat intern table poisoned");
    if let Some(s) = table.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    table.insert(name, leaked);
    leaked
}

/// Emit one heartbeat event: sequence number, dispatch totals, allocation
/// totals, every registered counter, and a summary of every registered
/// histogram (count / sum / p50 / p95 / p99 over its lifetime, plus the
/// rolling-window count and p99) — so a JSONL stream carries quantile
/// trajectories, not just counter trajectories.
fn beat(seq: u64) {
    let mut attrs: Vec<(&'static str, Attr)> = Vec::new();
    attrs.push(("seq", Attr::U64(seq)));
    let (events, spans) = crate::dispatch_totals();
    attrs.push(("dispatched_events", Attr::U64(events)));
    attrs.push(("dispatched_spans", Attr::U64(spans)));
    let (alloc_n, alloc_b) = crate::alloc::totals();
    attrs.push(("alloc_n", Attr::U64(alloc_n)));
    attrs.push(("alloc_b", Attr::U64(alloc_b)));
    for (name, value) in crate::counters() {
        attrs.push((static_name(name), Attr::U64(value)));
    }
    let windowed = crate::histograms_windowed();
    for snap in crate::histograms() {
        attrs.push((static_name(format!("{}.count", snap.name)), Attr::U64(snap.count)));
        attrs.push((static_name(format!("{}.sum", snap.name)), Attr::U64(snap.sum)));
        for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            attrs.push((
                static_name(format!("{}.{label}", snap.name)),
                Attr::U64(snap.quantile_upper_bound(q)),
            ));
        }
        if let Some(w) = windowed.iter().find(|w| w.name == snap.name) {
            attrs.push((static_name(format!("{}.win.count", snap.name)), Attr::U64(w.count)));
            attrs.push((
                static_name(format!("{}.win.p99", snap.name)),
                Attr::U64(w.quantile_upper_bound(0.99)),
            ));
        }
    }
    crate::emit_with(Level::Info, "mica_obs::heartbeat", "heartbeat".to_string(), attrs);
}

/// Start the heartbeat thread at `period`. Idempotent enough for its two
/// callers (env init and tests): each call starts one thread, and tests
/// use short-lived assertions rather than stopping it — the thread is
/// detached and exits with the process.
pub fn start_heartbeat(period: Duration) {
    let spawned = std::thread::Builder::new()
        .name("mica-obs-heartbeat".to_string())
        .spawn(move || {
            let mut seq = 0u64;
            loop {
                std::thread::sleep(period);
                seq += 1;
                beat(seq);
            }
        });
    if let Err(e) = spawned {
        eprintln!("warning: cannot start metrics heartbeat: {e}");
    }
}

/// Read `MICA_METRICS_EVERY` and start the heartbeat if set. Called once
/// from the global init.
pub(crate) fn init_from_env() {
    let Some(raw) = std::env::var_os("MICA_METRICS_EVERY") else { return };
    let raw = raw.to_string_lossy();
    match parse_period(&raw) {
        Some(period) => start_heartbeat(period),
        None => eprintln!("warning: unrecognized MICA_METRICS_EVERY={raw:?}; heartbeat is off"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_parses_ms_s_and_bare_seconds() {
        assert_eq!(parse_period("250ms"), Some(Duration::from_millis(250)));
        assert_eq!(parse_period("2s"), Some(Duration::from_millis(2000)));
        assert_eq!(parse_period("1.5"), Some(Duration::from_millis(1500)));
        assert_eq!(parse_period(" 3 "), Some(Duration::from_millis(3000)));
        assert_eq!(parse_period("1ms"), Some(Duration::from_millis(10)), "floored at 10ms");
        for bad in ["", "fast", "-1s", "0", "NaNs"] {
            assert_eq!(parse_period(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn beat_carries_counters_and_histogram_snapshots() {
        static C: crate::Counter = crate::Counter::new("obs.test.beat.counter");
        static H: crate::Histogram = crate::Histogram::new("obs.test.beat.hist");
        C.add(2);
        for v in [1u64, 10, 100] {
            H.record(v);
        }
        let sink = crate::MemorySink::new();
        let id = crate::add_sink(Box::new(sink.clone()));
        beat(7);
        crate::remove_sink(id);
        let beats: Vec<crate::Event> = sink
            .events()
            .into_iter()
            .filter(|e| e.target == "mica_obs::heartbeat")
            .collect();
        assert_eq!(beats.len(), 1);
        let attrs = &beats[0].attrs;
        let get = |key: &str| attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v.clone());
        assert_eq!(get("seq"), Some(crate::Attr::U64(7)));
        assert!(matches!(get("obs.test.beat.counter"), Some(crate::Attr::U64(n)) if n >= 2));
        // Histogram summaries ride along — the fix this test pins: the
        // heartbeat used to emit counters only.
        assert!(matches!(get("obs.test.beat.hist.count"), Some(crate::Attr::U64(n)) if n >= 3));
        assert!(get("obs.test.beat.hist.sum").is_some());
        assert!(get("obs.test.beat.hist.p50").is_some());
        assert!(get("obs.test.beat.hist.p95").is_some());
        assert!(get("obs.test.beat.hist.p99").is_some());
        assert!(get("obs.test.beat.hist.win.count").is_some());
        assert!(get("obs.test.beat.hist.win.p99").is_some());
    }

    #[test]
    fn interned_names_are_stable() {
        let a = static_name("obs.test.intern".to_string());
        let b = static_name("obs.test.intern".to_string());
        assert!(std::ptr::eq(a, b), "same name must intern to one allocation");
    }
}

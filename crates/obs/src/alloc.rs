//! Allocation profiling: a `GlobalAlloc` wrapper that charges allocation
//! counts and bytes to the active span (`MICA_ALLOC=1`).
//!
//! [`TrackingAllocator`] forwards every request to the system allocator
//! and, while tracking is enabled, bumps two process-wide totals and two
//! thread-local cells. [`crate::span`] snapshots the thread-local cells at
//! open, and the closing guard attaches the delta as `alloc_n` /
//! `alloc_b` span attributes — so a Chrome trace or JSONL stream shows
//! which kernel or stage allocated how much. Attribution is *inclusive*:
//! a parent span's delta covers its children, the same convention pprof
//! uses for cumulative values.
//!
//! The binary (not this crate) must install the allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mica_obs::alloc::TrackingAllocator = mica_obs::alloc::TrackingAllocator;
//! ```
//!
//! `mica-experiments` does this in its library root, so every experiment
//! binary and test inherits it. When tracking is disabled (the default)
//! the only cost per allocation is one relaxed atomic load.
//!
//! Known observer effects, accepted by design: the obs layer's own
//! allocations (record rendering, sink buffers) are charged to whatever
//! span is active when they happen, and allocations on threads with no
//! open span count only toward the process totals. Tracking never touches
//! computed results — the experiments' determinism tests profile with
//! `MICA_ALLOC` on and off and require byte-identical artifacts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Process-wide totals since tracking was first enabled. Plain atomics,
/// not [`crate::Counter`]s: a `Counter`'s first touch allocates its cell,
/// which would recurse into the allocator mid-registration. The
/// [`crate::counters`] snapshot merges these in as `alloc.count` /
/// `alloc.bytes`.
static TOTAL_COUNT: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // const-initialized Cells: first touch never allocates, so the
    // allocator can bump them re-entrantly without recursion.
    static THREAD_COUNT: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// The `#[global_allocator]` shim. Zero-sized; all state is static.
pub struct TrackingAllocator;

#[inline]
fn note(size: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    TOTAL_COUNT.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    // try_with: thread-local storage may already be torn down while the
    // runtime frees thread state during exit.
    let _ = THREAD_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + size as u64));
}

// SAFETY: pure pass-through to `System`; the bookkeeping touches only
// atomics and const-initialized thread-locals, never the heap.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

/// Whether allocation tracking is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracking on or off programmatically (tests; embedders). The
/// environment path is `MICA_ALLOC=1`, read once at `mica-obs` init.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Read `MICA_ALLOC` and enable tracking for truthy values. Called at the
/// end of the global init — the env read itself allocates, and running it
/// before the flag flips keeps that allocation untracked instead of
/// recursive.
pub(crate) fn init_from_env() {
    if let Some(v) = std::env::var_os("MICA_ALLOC") {
        let v = v.to_string_lossy();
        match v.trim() {
            "1" | "true" | "on" | "yes" => set_enabled(true),
            "0" | "false" | "off" | "no" | "" => {}
            other => eprintln!("warning: unrecognized MICA_ALLOC={other:?}; tracking is off"),
        }
    }
}

/// Process-wide (allocations, bytes) since tracking was first enabled.
pub fn totals() -> (u64, u64) {
    (TOTAL_COUNT.load(Ordering::Relaxed), TOTAL_BYTES.load(Ordering::Relaxed))
}

/// The calling thread's (allocations, bytes); monotone, so span guards
/// snapshot-and-diff it.
pub(crate) fn thread_totals() -> (u64, u64) {
    (THREAD_COUNT.with(Cell::get), THREAD_BYTES.with(Cell::get))
}

/// Zero the process totals (tests). Thread-local cells keep counting —
/// span deltas are differences, so absolute values never matter to them.
pub(crate) fn reset_totals() {
    TOTAL_COUNT.store(0, Ordering::Relaxed);
    TOTAL_BYTES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary for this crate does not install the allocator, so
    // `note` is exercised directly; end-to-end coverage (real allocations
    // landing in span attrs) lives in mica-experiments, whose binaries do.
    // One test, because the enable flag is process-global.
    #[test]
    fn tracking_flag_gates_both_totals() {
        set_enabled(false);
        let before_thread = thread_totals();
        note(128);
        assert_eq!(thread_totals(), before_thread, "disabled note must not count");

        set_enabled(true);
        let (c0, b0) = totals();
        let (tc0, tb0) = thread_totals();
        note(64);
        note(32);
        let (c1, b1) = totals();
        assert!(c1 - c0 >= 2 && b1 - b0 >= 96, "process totals advanced");
        let (tc1, tb1) = thread_totals();
        assert_eq!(tc1 - tc0, 2);
        assert_eq!(tb1 - tb0, 96);
        set_enabled(false);
    }
}

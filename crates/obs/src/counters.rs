//! Process-wide atomic counters and power-of-two histograms.
//!
//! Both are registered by name in a global table on first use, so a
//! `static COUNTER: Counter = Counter::new("profile.cache.hit")` anywhere
//! in the workspace and a `counters()` snapshot in the run-summary writer
//! agree on one cell. Bumping is a single relaxed `fetch_add` — safe in
//! the `par_map` hot path — and, like all of `mica-obs`, has no effect on
//! computed results.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static COUNTERS: OnceLock<Mutex<BTreeMap<&'static str, &'static AtomicU64>>> = OnceLock::new();
static HISTOGRAMS: OnceLock<Mutex<BTreeMap<&'static str, &'static HistCells>>> = OnceLock::new();

fn counter_table() -> &'static Mutex<BTreeMap<&'static str, &'static AtomicU64>> {
    COUNTERS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn histogram_table() -> &'static Mutex<BTreeMap<&'static str, &'static HistCells>> {
    HISTOGRAMS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A named monotonic counter. Declare as a `static` near its bump sites;
/// the first touch registers the cell (one mutex hit), every later bump is
/// lock-free.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// A handle for the counter named `name`. Handles with the same name
    /// share one cell.
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, cell: OnceLock::new() }
    }

    fn cell(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(|| {
            let mut table = counter_table().lock().expect("counter table poisoned");
            table.entry(self.name).or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
        })
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.cell().fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell().load(Ordering::Relaxed)
    }

    /// Register the counter (at zero) without bumping it, so it appears in
    /// [`counters`] snapshots — run summaries list known-but-unused
    /// counters explicitly instead of omitting them.
    pub fn register(&self) {
        let _ = self.cell();
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Snapshot of every registered counter, ascending by name.
///
/// The `fault.*` counters live in `mica-fault` (which sits *below* this
/// crate and cannot register here) and the `alloc.*` totals live in plain
/// atomics (a [`Counter`]'s first touch allocates, which would recurse
/// into the tracking allocator); both snapshots are merged in so run
/// summaries see one flat namespace.
pub fn counters() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = counter_table()
        .lock()
        .expect("counter table poisoned")
        .iter()
        .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
        .collect();
    out.extend(mica_fault::metrics::snapshot().into_iter().map(|(n, v)| (n.to_string(), v)));
    let (alloc_n, alloc_b) = crate::alloc::totals();
    out.push(("alloc.count".to_string(), alloc_n));
    out.push(("alloc.bytes".to_string(), alloc_b));
    out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    out
}

const BUCKETS: usize = 64;

struct HistCells {
    /// `buckets[b]` counts values whose bit length is `b` (0 counts only
    /// the value 0), i.e. bucket upper bounds 0, 1, 3, 7, ..., 2^63-1.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A named histogram over `u64` values with power-of-two buckets — cheap
/// enough for per-chunk durations, coarse enough to never matter.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistCells>,
}

impl Histogram {
    /// A handle for the histogram named `name`. Handles with the same
    /// name share cells.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram { name, cell: OnceLock::new() }
    }

    fn cells(&self) -> &'static HistCells {
        self.cell.get_or_init(|| {
            let mut table = histogram_table().lock().expect("histogram table poisoned");
            table.entry(self.name).or_insert_with(|| {
                Box::leak(Box::new(HistCells {
                    buckets: [const { AtomicU64::new(0) }; BUCKETS],
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }))
            })
        })
    }

    /// Record one value.
    pub fn record(&self, value: u64) {
        let cells = self.cells();
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        cells.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        snapshot_cells(self.name, self.cells())
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts; bucket `b` holds values of bit length `b`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile. Bucketed,
    /// so an *upper bound*, not an exact order statistic.
    ///
    /// Edge cases are pinned down (they used to be whatever float
    /// arithmetic happened to produce): an empty snapshot and a NaN `q`
    /// both return 0; `q` outside 0..=1 clamps, so `q = 0.0` is the
    /// smallest non-empty bucket's bound and `q = 1.0` the largest. A
    /// snapshot whose buckets under-count `count` (a torn concurrent
    /// snapshot, or a truncated deserialized one) saturates to
    /// `u64::MAX` rather than inventing a bound.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 || q.is_nan() {
            return 0;
        }
        let rank = (((q.clamp(0.0, 1.0) * self.count as f64).ceil()) as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if n > 0 && seen >= rank {
                return if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
            }
        }
        u64::MAX
    }
}

fn snapshot_cells(name: &str, cells: &HistCells) -> HistogramSnapshot {
    HistogramSnapshot {
        name: name.to_string(),
        count: cells.count.load(Ordering::Relaxed),
        sum: cells.sum.load(Ordering::Relaxed),
        buckets: cells.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
    }
}

/// Snapshot of every registered histogram, ascending by name.
pub fn histograms() -> Vec<HistogramSnapshot> {
    histogram_table()
        .lock()
        .expect("histogram table poisoned")
        .iter()
        .map(|(name, cells)| snapshot_cells(name, cells))
        .collect()
}

/// Zero every registered counter and histogram (tests; run summaries of
/// sequential runs in one process). Also zeros the merged `fault.*`
/// counters.
pub fn reset_metrics() {
    mica_fault::metrics::reset();
    crate::alloc::reset_totals();
    for (_, cell) in counter_table().lock().expect("counter table poisoned").iter() {
        cell.store(0, Ordering::Relaxed);
    }
    for (_, cells) in histogram_table().lock().expect("histogram table poisoned").iter() {
        for b in &cells.buckets {
            b.store(0, Ordering::Relaxed);
        }
        cells.count.store(0, Ordering::Relaxed);
        cells.sum.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_a_cell() {
        static A: Counter = Counter::new("obs.test.shared");
        static B: Counter = Counter::new("obs.test.shared");
        let before = A.get();
        B.add(3);
        A.incr();
        assert_eq!(A.get(), before + 4);
        assert_eq!(B.get(), A.get());
        assert!(counters().iter().any(|(n, _)| n == "obs.test.shared"));
    }

    #[test]
    fn register_without_bumping_appears_at_zero_or_more() {
        static C: Counter = Counter::new("obs.test.registered");
        C.register();
        let snap = counters();
        assert!(snap.iter().any(|(n, _)| n == "obs.test.registered"));
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        static H: Histogram = Histogram::new("obs.test.hist");
        for v in [0u64, 1, 2, 3, 1000] {
            H.record(v);
        }
        let snap = H.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1006);
        assert_eq!(snap.buckets[0], 1, "value 0");
        assert_eq!(snap.buckets[1], 1, "value 1");
        assert_eq!(snap.buckets[2], 2, "values 2 and 3");
        assert_eq!(snap.buckets[10], 1, "value 1000 has bit length 10");
        assert!((snap.mean() - 201.2).abs() < 1e-9);
        assert_eq!(snap.quantile_upper_bound(0.5), 3);
        assert_eq!(snap.quantile_upper_bound(1.0), 1023);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        static H: Histogram = Histogram::new("obs.test.hist.empty");
        let snap = H.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.quantile_upper_bound(0.9), 0);
        assert_eq!(snap.quantile_upper_bound(0.0), 0);
        assert_eq!(snap.quantile_upper_bound(1.0), 0);
        assert_eq!(snap.quantile_upper_bound(f64::NAN), 0);
    }

    #[test]
    fn quantile_edge_cases_are_pinned() {
        static H: Histogram = Histogram::new("obs.test.hist.quantile");
        for v in [1u64, 2, 3, 1000] {
            H.record(v);
        }
        let snap = H.snapshot();
        // q=0 names the smallest non-empty bucket, q=1 the largest.
        assert_eq!(snap.quantile_upper_bound(0.0), 1);
        assert_eq!(snap.quantile_upper_bound(1.0), 1023);
        // Out-of-range q clamps instead of under/overflowing the rank.
        assert_eq!(snap.quantile_upper_bound(-3.5), 1);
        assert_eq!(snap.quantile_upper_bound(7.0), 1023);
        // NaN is an explicit "no answer", not an accidental q=0.
        assert_eq!(snap.quantile_upper_bound(f64::NAN), 0);
        // Infinities clamp like any other out-of-range q.
        assert_eq!(snap.quantile_upper_bound(f64::INFINITY), 1023);
        assert_eq!(snap.quantile_upper_bound(f64::NEG_INFINITY), 1);
    }

    #[test]
    fn quantile_saturates_on_undercounting_buckets() {
        // A snapshot whose count exceeds its bucket total (torn snapshot
        // or truncated deserialization) must saturate, not panic or lie.
        let snap = HistogramSnapshot {
            name: "torn".to_string(),
            count: 10,
            sum: 100,
            buckets: vec![0, 2],
        };
        assert_eq!(snap.quantile_upper_bound(0.1), 1, "rank 1 still lands in bucket 1");
        assert_eq!(snap.quantile_upper_bound(1.0), u64::MAX, "rank 10 is past every bucket");
    }

    #[test]
    fn counters_snapshot_merges_alloc_totals() {
        let names: Vec<String> = counters().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"alloc.count".to_string()));
        assert!(names.contains(&"alloc.bytes".to_string()));
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "merged snapshot stays sorted");
    }
}

//! Process-wide atomic counters and power-of-two histograms, each with a
//! rolling window beside the lifetime cells.
//!
//! Both are registered by name in a global table on first use, so a
//! `static COUNTER: Counter = Counter::new("profile.cache.hit")` anywhere
//! in the workspace and a `counters()` snapshot in the run-summary writer
//! agree on one cell. Bumping is a single relaxed `fetch_add` — safe in
//! the `par_map` hot path — and, like all of `mica-obs`, has no effect on
//! computed results.
//!
//! # Windows
//!
//! Lifetime totals are useless for a long-running daemon ("42 million
//! requests since boot" answers nothing about *now*), so every cell also
//! feeds a ring of [`WINDOW_SLOTS`] buckets of [`WINDOW_SLOT_MS`] each —
//! 12×5s = the last minute. A bump lands in the slot for the current
//! 5-second epoch; a slot whose stamp is stale is re-claimed (one CAS)
//! and zeroed by the first writer of the new epoch. Readers sum only the
//! slots stamped inside the window, so expiry needs no sweeper thread.
//!
//! The rotation is lock-free and deliberately *approximate at the
//! boundary*: a writer racing the re-claim can add to a slot an instant
//! before it is zeroed (losing that one bump from the window) or land a
//! value from the closing epoch in the fresh slot. The error is bounded
//! by the handful of in-flight bumps at each 5-second edge, affects only
//! the windowed view (lifetime cells are exact), and buys bump costs low
//! enough for request hot paths.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Slots in each rolling window ring.
pub const WINDOW_SLOTS: usize = 12;
/// Width of one window slot, milliseconds.
pub const WINDOW_SLOT_MS: u64 = 5_000;

/// Total width of the rolling window, milliseconds (12×5s = one minute).
pub fn window_span_ms() -> u64 {
    WINDOW_SLOTS as u64 * WINDOW_SLOT_MS
}

/// Wall-clock override for deterministic window tests (`u64::MAX` =
/// follow the real clock).
static WINDOW_CLOCK_MS: AtomicU64 = AtomicU64::new(u64::MAX);

/// Pin (or with `None` unpin) the clock the window rings read, so tests
/// can step across slot boundaries deterministically. Global — tests
/// using it must own their counter names and restore the real clock.
pub fn set_window_clock_ms_for_tests(ms: Option<u64>) {
    WINDOW_CLOCK_MS.store(ms.unwrap_or(u64::MAX), Ordering::Release);
}

/// Milliseconds on the window clock. The real clock is `SystemTime` (one
/// vDSO read per bump), not the obs epoch `Instant` — reading the epoch
/// would force full observability init on the first counter bump.
fn window_now_ms() -> u64 {
    let pinned = WINDOW_CLOCK_MS.load(Ordering::Acquire);
    if pinned != u64::MAX {
        return pinned;
    }
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// The current slot epoch ("stamp"). Strictly positive on any real
/// clock, so a zeroed stamp always reads as expired.
fn current_stamp() -> u64 {
    window_now_ms() / WINDOW_SLOT_MS
}

/// One ring slot of a windowed counter.
struct WinSlot {
    /// Slot epoch this slot's value belongs to (0 = never written).
    stamp: AtomicU64,
    value: AtomicU64,
}

/// Re-claim `stamp_cell` for epoch `stamp`; returns whether this caller
/// won the rotation (and must zero the slot's values).
fn claim_slot(stamp_cell: &AtomicU64, stamp: u64) -> bool {
    let cur = stamp_cell.load(Ordering::Acquire);
    cur != stamp
        && stamp_cell.compare_exchange(cur, stamp, Ordering::AcqRel, Ordering::Acquire).is_ok()
}

struct CounterCells {
    total: AtomicU64,
    ring: [WinSlot; WINDOW_SLOTS],
}

fn new_counter_cells() -> CounterCells {
    CounterCells {
        total: AtomicU64::new(0),
        ring: [const {
            WinSlot { stamp: AtomicU64::new(0), value: AtomicU64::new(0) }
        }; WINDOW_SLOTS],
    }
}

static COUNTERS: OnceLock<Mutex<BTreeMap<&'static str, &'static CounterCells>>> = OnceLock::new();
static HISTOGRAMS: OnceLock<Mutex<BTreeMap<&'static str, &'static HistCells>>> = OnceLock::new();

fn counter_table() -> &'static Mutex<BTreeMap<&'static str, &'static CounterCells>> {
    COUNTERS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn histogram_table() -> &'static Mutex<BTreeMap<&'static str, &'static HistCells>> {
    HISTOGRAMS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A named monotonic counter. Declare as a `static` near its bump sites;
/// the first touch registers the cell (one mutex hit), every later bump is
/// lock-free.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static CounterCells>,
}

impl Counter {
    /// A handle for the counter named `name`. Handles with the same name
    /// share one cell.
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, cell: OnceLock::new() }
    }

    fn cell(&self) -> &'static CounterCells {
        self.cell.get_or_init(|| {
            let mut table = counter_table().lock().expect("counter table poisoned");
            table.entry(self.name).or_insert_with(|| Box::leak(Box::new(new_counter_cells())))
        })
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        let cells = self.cell();
        cells.total.fetch_add(n, Ordering::Relaxed);
        let stamp = current_stamp();
        let slot = &cells.ring[(stamp % WINDOW_SLOTS as u64) as usize];
        if claim_slot(&slot.stamp, stamp) {
            slot.value.store(0, Ordering::Release);
        }
        slot.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current lifetime value.
    pub fn get(&self) -> u64 {
        self.cell().total.load(Ordering::Relaxed)
    }

    /// Value accumulated over the rolling window (the last
    /// [`window_span_ms`] milliseconds, including the in-progress slot).
    pub fn windowed(&self) -> u64 {
        windowed_counter_value(self.cell())
    }

    /// Register the counter (at zero) without bumping it, so it appears in
    /// [`counters`] snapshots — run summaries list known-but-unused
    /// counters explicitly instead of omitting them.
    pub fn register(&self) {
        let _ = self.cell();
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Snapshot of every registered counter, ascending by name.
///
/// The `fault.*` counters live in `mica-fault` (which sits *below* this
/// crate and cannot register here) and the `alloc.*` totals live in plain
/// atomics (a [`Counter`]'s first touch allocates, which would recurse
/// into the tracking allocator); both snapshots are merged in so run
/// summaries see one flat namespace.
pub fn counters() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = counter_table()
        .lock()
        .expect("counter table poisoned")
        .iter()
        .map(|(name, cells)| (name.to_string(), cells.total.load(Ordering::Relaxed)))
        .collect();
    out.extend(mica_fault::metrics::snapshot().into_iter().map(|(n, v)| (n.to_string(), v)));
    let (alloc_n, alloc_b) = crate::alloc::totals();
    out.push(("alloc.count".to_string(), alloc_n));
    out.push(("alloc.bytes".to_string(), alloc_b));
    out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Sum the slots of `cells` stamped inside the current window.
fn windowed_counter_value(cells: &CounterCells) -> u64 {
    let stamp = current_stamp();
    let oldest = stamp.saturating_sub(WINDOW_SLOTS as u64 - 1);
    cells
        .ring
        .iter()
        .filter(|s| {
            let st = s.stamp.load(Ordering::Acquire);
            st >= oldest && st <= stamp
        })
        .map(|s| s.value.load(Ordering::Relaxed))
        .sum()
}

/// Windowed snapshot of every registered counter, ascending by name —
/// the value each accumulated over the last [`window_span_ms`]
/// milliseconds. Only table-registered counters have windows; the merged
/// `fault.*` / `alloc.*` totals (see [`counters`]) are lifetime-only and
/// do not appear here.
pub fn counters_windowed() -> Vec<(String, u64)> {
    counter_table()
        .lock()
        .expect("counter table poisoned")
        .iter()
        .map(|(name, cells)| (name.to_string(), windowed_counter_value(cells)))
        .collect()
}

const BUCKETS: usize = 64;

/// One ring slot of a windowed histogram: a full bucket array per slot,
/// so windowed quantiles are as exact as lifetime ones.
struct WinHistSlot {
    /// Slot epoch (0 = never written).
    stamp: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

struct HistCells {
    /// `buckets[b]` counts values whose bit length is `b` (0 counts only
    /// the value 0), i.e. bucket upper bounds 0, 1, 3, 7, ..., 2^63-1.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    ring: [WinHistSlot; WINDOW_SLOTS],
}

/// A named histogram over `u64` values with power-of-two buckets — cheap
/// enough for per-chunk durations, coarse enough to never matter.
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistCells>,
}

impl Histogram {
    /// A handle for the histogram named `name`. Handles with the same
    /// name share cells.
    pub const fn new(name: &'static str) -> Histogram {
        Histogram { name, cell: OnceLock::new() }
    }

    fn cells(&self) -> &'static HistCells {
        self.cell.get_or_init(|| {
            let mut table = histogram_table().lock().expect("histogram table poisoned");
            table.entry(self.name).or_insert_with(|| {
                Box::leak(Box::new(HistCells {
                    buckets: [const { AtomicU64::new(0) }; BUCKETS],
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    ring: [const {
                        WinHistSlot {
                            stamp: AtomicU64::new(0),
                            count: AtomicU64::new(0),
                            sum: AtomicU64::new(0),
                            buckets: [const { AtomicU64::new(0) }; BUCKETS],
                        }
                    }; WINDOW_SLOTS],
                }))
            })
        })
    }

    /// Record one value.
    pub fn record(&self, value: u64) {
        let cells = self.cells();
        let bucket = ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1);
        cells.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
        let stamp = current_stamp();
        let slot = &cells.ring[(stamp % WINDOW_SLOTS as u64) as usize];
        if claim_slot(&slot.stamp, stamp) {
            // The winner zeroes the whole slot; the 64 stores are not one
            // atomic step, so a reader racing this exact instant can see
            // a partially cleared slot — the same bounded boundary error
            // the module doc accepts for counters.
            slot.count.store(0, Ordering::Relaxed);
            slot.sum.store(0, Ordering::Relaxed);
            for b in &slot.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        slot.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current lifetime snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        snapshot_cells(self.name, self.cells())
    }

    /// Snapshot over the rolling window: the merge of every ring slot
    /// stamped inside the last [`window_span_ms`] milliseconds.
    pub fn windowed_snapshot(&self) -> HistogramSnapshot {
        windowed_hist_snapshot(self.name, self.cells())
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts; bucket `b` holds values of bit length `b`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile. Bucketed,
    /// so an *upper bound*, not an exact order statistic.
    ///
    /// Edge cases are pinned down (they used to be whatever float
    /// arithmetic happened to produce): an empty snapshot and a NaN `q`
    /// both return 0; `q` outside 0..=1 clamps, so `q = 0.0` is the
    /// smallest non-empty bucket's bound and `q = 1.0` the largest. A
    /// snapshot whose buckets under-count `count` (a torn concurrent
    /// snapshot, or a truncated deserialized one) saturates to
    /// `u64::MAX` rather than inventing a bound.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 || q.is_nan() {
            return 0;
        }
        let rank = (((q.clamp(0.0, 1.0) * self.count as f64).ceil()) as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if n > 0 && seen >= rank {
                return if b >= 64 { u64::MAX } else { (1u64 << b) - 1 };
            }
        }
        u64::MAX
    }
}

fn snapshot_cells(name: &str, cells: &HistCells) -> HistogramSnapshot {
    HistogramSnapshot {
        name: name.to_string(),
        count: cells.count.load(Ordering::Relaxed),
        sum: cells.sum.load(Ordering::Relaxed),
        buckets: cells.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
    }
}

fn windowed_hist_snapshot(name: &str, cells: &HistCells) -> HistogramSnapshot {
    let stamp = current_stamp();
    let oldest = stamp.saturating_sub(WINDOW_SLOTS as u64 - 1);
    let mut snap = HistogramSnapshot {
        name: name.to_string(),
        count: 0,
        sum: 0,
        buckets: vec![0; BUCKETS],
    };
    for slot in &cells.ring {
        let st = slot.stamp.load(Ordering::Acquire);
        if st < oldest || st > stamp {
            continue;
        }
        snap.count = snap.count.saturating_add(slot.count.load(Ordering::Relaxed));
        snap.sum = snap.sum.saturating_add(slot.sum.load(Ordering::Relaxed));
        for (acc, b) in snap.buckets.iter_mut().zip(&slot.buckets) {
            *acc = acc.saturating_add(b.load(Ordering::Relaxed));
        }
    }
    snap
}

/// Snapshot of every registered histogram, ascending by name.
pub fn histograms() -> Vec<HistogramSnapshot> {
    histogram_table()
        .lock()
        .expect("histogram table poisoned")
        .iter()
        .map(|(name, cells)| snapshot_cells(name, cells))
        .collect()
}

/// Windowed snapshot of every registered histogram, ascending by name
/// (see [`Histogram::windowed_snapshot`]).
pub fn histograms_windowed() -> Vec<HistogramSnapshot> {
    histogram_table()
        .lock()
        .expect("histogram table poisoned")
        .iter()
        .map(|(name, cells)| windowed_hist_snapshot(name, cells))
        .collect()
}

/// Zero every registered counter and histogram (tests; run summaries of
/// sequential runs in one process). Also zeros the merged `fault.*`
/// counters.
pub fn reset_metrics() {
    mica_fault::metrics::reset();
    crate::alloc::reset_totals();
    for (_, cells) in counter_table().lock().expect("counter table poisoned").iter() {
        cells.total.store(0, Ordering::Relaxed);
        for slot in &cells.ring {
            // Stamp 0 predates any real epoch, so the slot reads as
            // expired until its next claim.
            slot.stamp.store(0, Ordering::Release);
            slot.value.store(0, Ordering::Relaxed);
        }
    }
    for (_, cells) in histogram_table().lock().expect("histogram table poisoned").iter() {
        for b in &cells.buckets {
            b.store(0, Ordering::Relaxed);
        }
        cells.count.store(0, Ordering::Relaxed);
        cells.sum.store(0, Ordering::Relaxed);
        for slot in &cells.ring {
            slot.stamp.store(0, Ordering::Release);
            slot.count.store(0, Ordering::Relaxed);
            slot.sum.store(0, Ordering::Relaxed);
            for b in &slot.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_a_cell() {
        static A: Counter = Counter::new("obs.test.shared");
        static B: Counter = Counter::new("obs.test.shared");
        let before = A.get();
        B.add(3);
        A.incr();
        assert_eq!(A.get(), before + 4);
        assert_eq!(B.get(), A.get());
        assert!(counters().iter().any(|(n, _)| n == "obs.test.shared"));
    }

    #[test]
    fn register_without_bumping_appears_at_zero_or_more() {
        static C: Counter = Counter::new("obs.test.registered");
        C.register();
        let snap = counters();
        assert!(snap.iter().any(|(n, _)| n == "obs.test.registered"));
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        static H: Histogram = Histogram::new("obs.test.hist");
        for v in [0u64, 1, 2, 3, 1000] {
            H.record(v);
        }
        let snap = H.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1006);
        assert_eq!(snap.buckets[0], 1, "value 0");
        assert_eq!(snap.buckets[1], 1, "value 1");
        assert_eq!(snap.buckets[2], 2, "values 2 and 3");
        assert_eq!(snap.buckets[10], 1, "value 1000 has bit length 10");
        assert!((snap.mean() - 201.2).abs() < 1e-9);
        assert_eq!(snap.quantile_upper_bound(0.5), 3);
        assert_eq!(snap.quantile_upper_bound(1.0), 1023);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        static H: Histogram = Histogram::new("obs.test.hist.empty");
        let snap = H.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.quantile_upper_bound(0.9), 0);
        assert_eq!(snap.quantile_upper_bound(0.0), 0);
        assert_eq!(snap.quantile_upper_bound(1.0), 0);
        assert_eq!(snap.quantile_upper_bound(f64::NAN), 0);
    }

    #[test]
    fn quantile_edge_cases_are_pinned() {
        static H: Histogram = Histogram::new("obs.test.hist.quantile");
        for v in [1u64, 2, 3, 1000] {
            H.record(v);
        }
        let snap = H.snapshot();
        // q=0 names the smallest non-empty bucket, q=1 the largest.
        assert_eq!(snap.quantile_upper_bound(0.0), 1);
        assert_eq!(snap.quantile_upper_bound(1.0), 1023);
        // Out-of-range q clamps instead of under/overflowing the rank.
        assert_eq!(snap.quantile_upper_bound(-3.5), 1);
        assert_eq!(snap.quantile_upper_bound(7.0), 1023);
        // NaN is an explicit "no answer", not an accidental q=0.
        assert_eq!(snap.quantile_upper_bound(f64::NAN), 0);
        // Infinities clamp like any other out-of-range q.
        assert_eq!(snap.quantile_upper_bound(f64::INFINITY), 1023);
        assert_eq!(snap.quantile_upper_bound(f64::NEG_INFINITY), 1);
    }

    #[test]
    fn quantile_saturates_on_undercounting_buckets() {
        // A snapshot whose count exceeds its bucket total (torn snapshot
        // or truncated deserialization) must saturate, not panic or lie.
        let snap = HistogramSnapshot {
            name: "torn".to_string(),
            count: 10,
            sum: 100,
            buckets: vec![0, 2],
        };
        assert_eq!(snap.quantile_upper_bound(0.1), 1, "rank 1 still lands in bucket 1");
        assert_eq!(snap.quantile_upper_bound(1.0), u64::MAX, "rank 10 is past every bucket");
    }

    /// Serializes the window-clock-pinning tests: the override is global,
    /// so two of them interleaving would corrupt each other's epochs.
    static WINDOW_CLOCK_LOCK: Mutex<()> = Mutex::new(());

    /// Run `f` with the window clock pinned, restoring the real clock
    /// even if `f` panics.
    fn with_pinned_clock(f: impl FnOnce()) {
        let _guard = WINDOW_CLOCK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        struct Unpin;
        impl Drop for Unpin {
            fn drop(&mut self) {
                set_window_clock_ms_for_tests(None);
            }
        }
        let _unpin = Unpin;
        f();
    }

    #[test]
    fn counter_window_rotates_at_slot_boundaries() {
        with_pinned_clock(|| {
            static C: Counter = Counter::new("obs.test.win.rotate");
            let base = 1_000_000 * WINDOW_SLOT_MS;
            set_window_clock_ms_for_tests(Some(base));
            C.add(5);
            assert_eq!(C.windowed(), 5);
            // Still inside the same slot.
            set_window_clock_ms_for_tests(Some(base + WINDOW_SLOT_MS - 1));
            C.add(2);
            assert_eq!(C.windowed(), 7);
            // Crossing into the next slot keeps both slots in the window.
            set_window_clock_ms_for_tests(Some(base + WINDOW_SLOT_MS));
            C.add(1);
            assert_eq!(C.windowed(), 8);
            // One full window later, only the newest slot survives.
            set_window_clock_ms_for_tests(Some(base + window_span_ms()));
            assert_eq!(C.windowed(), 1, "first two slots expired");
            // Another full window and everything is gone — without any
            // writes; expiry is read-side.
            set_window_clock_ms_for_tests(Some(base + 2 * window_span_ms() + WINDOW_SLOT_MS));
            assert_eq!(C.windowed(), 0);
            // Lifetime total was never touched by expiry.
            assert_eq!(C.get(), 8);
        });
    }

    #[test]
    fn counter_window_reclaims_a_stale_slot() {
        with_pinned_clock(|| {
            static C: Counter = Counter::new("obs.test.win.reclaim");
            let base = 2_000_000 * WINDOW_SLOT_MS;
            set_window_clock_ms_for_tests(Some(base));
            C.add(100);
            // Exactly WINDOW_SLOTS later the ring index wraps to the same
            // slot; the claim must zero the old epoch's 100 first.
            set_window_clock_ms_for_tests(Some(base + window_span_ms()));
            C.add(3);
            assert_eq!(C.windowed(), 3, "wrapped slot was re-zeroed on claim");
        });
    }

    #[test]
    fn histogram_window_rotates_and_merges() {
        with_pinned_clock(|| {
            static H: Histogram = Histogram::new("obs.test.win.hist");
            let base = 3_000_000 * WINDOW_SLOT_MS;
            set_window_clock_ms_for_tests(Some(base));
            for v in [1u64, 2, 3] {
                H.record(v);
            }
            set_window_clock_ms_for_tests(Some(base + WINDOW_SLOT_MS));
            H.record(1000);
            let snap = H.windowed_snapshot();
            assert_eq!(snap.count, 4, "both live slots merge");
            assert_eq!(snap.sum, 1006);
            assert_eq!(snap.quantile_upper_bound(1.0), 1023);
            // Far enough ahead that only the 1000 survives.
            set_window_clock_ms_for_tests(Some(base + window_span_ms()));
            let snap = H.windowed_snapshot();
            assert_eq!(snap.count, 1);
            assert_eq!(snap.sum, 1000);
            assert_eq!(snap.quantile_upper_bound(0.5), 1023);
            // Lifetime snapshot still sees all four.
            assert_eq!(H.snapshot().count, 4);
        });
    }

    #[test]
    fn windowed_snapshots_list_registered_cells() {
        static C: Counter = Counter::new("obs.test.win.listed");
        static H: Histogram = Histogram::new("obs.test.win.listed_h");
        C.register();
        H.record(1);
        assert!(counters_windowed().iter().any(|(n, _)| n == "obs.test.win.listed"));
        assert!(histograms_windowed().iter().any(|s| s.name == "obs.test.win.listed_h"));
        // The windowed counter view excludes the merged lifetime-only
        // namespaces.
        assert!(counters_windowed().iter().all(|(n, _)| !n.starts_with("alloc.")));
    }

    #[test]
    fn window_survives_concurrent_writers_across_a_rotation() {
        with_pinned_clock(|| {
            static C: Counter = Counter::new("obs.test.win.concurrent");
            static H: Histogram = Histogram::new("obs.test.win.concurrent_h");
            let base = 4_000_000 * WINDOW_SLOT_MS;
            set_window_clock_ms_for_tests(Some(base));
            let threads = 8;
            let per_thread = 1000u64;
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        for i in 0..per_thread {
                            C.incr();
                            H.record(i % 7);
                            if i == per_thread / 2 {
                                // Every thread races the same rotation.
                                set_window_clock_ms_for_tests(Some(base + WINDOW_SLOT_MS));
                            }
                        }
                    });
                }
            });
            let total = threads * per_thread;
            // Lifetime cells are exact even across the racy rotation.
            assert_eq!(C.get(), total);
            assert_eq!(H.snapshot().count, total);
            // The windowed view may lose the in-flight bumps racing the
            // single claim/zero edge, but never more than that, and must
            // not over-count past the true total.
            // Two claims happen (the never-written slot at start, the
            // fresh slot at the rotation) and each can race the other
            // threads' in-flight bumps.
            let max_lost = 2 * (threads - 1);
            let windowed = C.windowed();
            assert!(windowed <= total, "window over-counted: {windowed} > {total}");
            assert!(
                windowed >= total - max_lost,
                "window lost more than the in-flight edges: {windowed} < {}",
                total - max_lost
            );
            let wsnap = H.windowed_snapshot();
            assert!(wsnap.count <= total);
            assert!(wsnap.count >= total - max_lost);
            // A merged windowed snapshot stays internally consistent up
            // to the same edge: buckets and count can disagree only by
            // bumps split across a zeroing store.
            let bucket_total: u64 = wsnap.buckets.iter().sum();
            assert!(
                bucket_total.abs_diff(wsnap.count) <= max_lost,
                "snapshot buckets ({bucket_total}) drifted from count ({})",
                wsnap.count
            );
        });
    }

    #[test]
    fn counters_snapshot_merges_alloc_totals() {
        let names: Vec<String> = counters().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"alloc.count".to_string()));
        assert!(names.contains(&"alloc.bytes".to_string()));
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "merged snapshot stays sorted");
    }
}

//! `mica-obs`: structured observability for the whole pipeline.
//!
//! The experiments are a long chain of expensive stages (profile 122
//! kernels, normalize, pairwise distances, GA, k-means/ROC) and the only
//! visibility into them used to be ad-hoc `println!` calls. This crate
//! replaces that with one coherent, *measurement-grade* layer:
//!
//! - **hierarchical spans** with monotonic timings ([`span`]), nested per
//!   thread via an RAII guard;
//! - **leveled events** ([`error!`], [`warn!`], [`info!`], [`debug!`],
//!   [`trace!`]) with optional structured attributes;
//! - **atomic counters and histograms** ([`Counter`], [`Histogram`]) for
//!   things worth counting (cache hits, stolen chunks, GA generations);
//! - a pluggable [`Sink`] trait with four implementations: a leveled
//!   human-readable stderr logger, an in-memory capture sink for tests, a
//!   JSON-lines recorder, and a Chrome-trace (`chrome://tracing`/Perfetto)
//!   exporter keyed by worker-thread id so `par_map` fan-out is visible.
//!
//! Everything is `std`-only (the build environment has no crate-registry
//! access — same constraint as the `compat/` stand-ins) and strictly
//! **side-effect-free on results**: the layer reads clocks and writes to
//! stderr/files, never into the computation. The experiments' determinism
//! tests assert profiling output is bit-identical with tracing on and off.
//!
//! # Configuration
//!
//! The global pipeline is initialized lazily from the environment on first
//! use (or explicitly via [`add_sink`]):
//!
//! - `MICA_LOG=error|warn|info|debug|trace|off` — stderr verbosity
//!   (default `info`; `warn` if the legacy `MICA_QUIET` is set);
//! - `MICA_TRACE=out.json` — write a Chrome-trace file of every span;
//! - `MICA_EVENTS=out.jsonl` — record every event and span as JSON lines.
//!
//! File sinks buffer; call [`flush`] (the experiments' `Runner` does) to
//! finalize output.
//!
//! # Overhead
//!
//! The hot-path cost when nothing is listening is one relaxed atomic load
//! per event macro and per [`span`] call, and one relaxed `fetch_add` per
//! counter bump. No formatting, allocation or clock read happens unless
//! some installed sink wants the record.

pub mod alloc;
mod chrome;
mod context;
mod counters;
mod heartbeat;
mod jsonl;
mod sink;

pub use chrome::ChromeTraceSink;
pub use context::{
    current_context, install_context, next_span_id, ContextGuard, TraceContext,
};
pub use heartbeat::start_heartbeat;
pub use counters::{
    counters, counters_windowed, histograms, histograms_windowed, reset_metrics,
    set_window_clock_ms_for_tests, window_span_ms, Counter, Histogram, HistogramSnapshot,
    WINDOW_SLOTS, WINDOW_SLOT_MS,
};
pub use jsonl::JsonLinesSink;
pub use sink::{MemorySink, Record, Sink, StderrSink};

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Levels
// ---------------------------------------------------------------------------

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The run is broken (still reported even under `MICA_QUIET`).
    Error = 1,
    /// Something unexpected that the run recovers from (e.g. a rejected
    /// profile cache).
    Warn = 2,
    /// Normal progress reporting — the default stderr verbosity.
    Info = 3,
    /// Per-stage internals (GA convergence, cache decisions, k-means fits).
    Debug = 4,
    /// Everything, including span-close lines on stderr.
    Trace = 5,
}

impl Level {
    /// Fixed-width uppercase name (for log lines).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Lowercase name (for JSON output).
    pub fn lower(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parse a `MICA_LOG` value; `None` for `off` (or `none`/`0`).
    /// Unrecognized values also parse to `None` so a typo silences rather
    /// than floods — the stderr sink reports the typo once at init.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------------
// Attributes and records
// ---------------------------------------------------------------------------

/// A structured attribute value attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum Attr {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values render as JSON `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attr::U64(v) => write!(f, "{v}"),
            Attr::I64(v) => write!(f, "{v}"),
            Attr::F64(v) => write!(f, "{v}"),
            Attr::Str(v) => f.write_str(v),
            Attr::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for Attr {
    fn from(v: u64) -> Attr {
        Attr::U64(v)
    }
}
impl From<usize> for Attr {
    fn from(v: usize) -> Attr {
        Attr::U64(v as u64)
    }
}
impl From<u32> for Attr {
    fn from(v: u32) -> Attr {
        Attr::U64(u64::from(v))
    }
}
impl From<i64> for Attr {
    fn from(v: i64) -> Attr {
        Attr::I64(v)
    }
}
impl From<f64> for Attr {
    fn from(v: f64) -> Attr {
        Attr::F64(v)
    }
}
impl From<bool> for Attr {
    fn from(v: bool) -> Attr {
        Attr::Bool(v)
    }
}
impl From<&str> for Attr {
    fn from(v: &str) -> Attr {
        Attr::Str(v.to_string())
    }
}
impl From<String> for Attr {
    fn from(v: String) -> Attr {
        Attr::Str(v)
    }
}

/// A leveled event delivered to sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the process-wide epoch (first `mica-obs` use).
    pub ts_us: u64,
    /// Logical thread id (see [`set_worker`]).
    pub tid: u64,
    /// Severity.
    pub level: Level,
    /// Emitting module (`module_path!` of the macro call site).
    pub target: &'static str,
    /// Rendered message.
    pub message: String,
    /// Structured attributes, in insertion order.
    pub attrs: Vec<(&'static str, Attr)>,
}

/// A closed span delivered to sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Start time, microseconds since the process-wide epoch.
    pub ts_us: u64,
    /// Duration in microseconds (monotonic clock).
    pub dur_us: u64,
    /// Logical thread id the span opened and closed on.
    pub tid: u64,
    /// Nesting depth on that thread at open time (0 = top level).
    pub depth: u32,
    /// Trace this span belongs to (0 = opened outside any
    /// [`TraceContext`]).
    pub trace_id: u64,
    /// Process-unique id of this span (never 0).
    pub span_id: u64,
    /// Id of the parent span (0 = root of its trace / untraced tree).
    pub parent_id: u64,
    /// Span category (e.g. `"profile"`, `"par"`, `"ga"`).
    pub cat: &'static str,
    /// Span name (e.g. a kernel name).
    pub name: String,
    /// Structured attributes, in insertion order.
    pub attrs: Vec<(&'static str, Attr)>,
}

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

struct State {
    sinks: RwLock<Vec<(u64, Box<dyn Sink>)>>,
    next_sink_id: AtomicU64,
    epoch: Instant,
    thread_names: Mutex<BTreeMap<u64, String>>,
}

static STATE: OnceLock<State> = OnceLock::new();
/// Fast-path caps, recomputed whenever the sink set changes. `MAX_LEVEL`
/// is the most verbose level any sink wants (0 = nothing listens); it
/// starts at the [`UNINIT`] sentinel so the first [`enabled`] /
/// [`spans_enabled`] call runs the environment init — without that, every
/// event before the first `state()` touch would be silently dropped.
/// `SPANS_ON` is whether any sink records spans.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINIT);
const UNINIT: u8 = u8::MAX;
static SPANS_ON: AtomicBool = AtomicBool::new(false);
/// Dispatch totals, for the overhead tests ("disabled ⇒ zero emitted").
static EVENTS_DISPATCHED: AtomicU64 = AtomicU64::new(0);
static SPANS_DISPATCHED: AtomicU64 = AtomicU64::new(0);

fn state() -> &'static State {
    STATE.get_or_init(|| {
        let mut sinks: Vec<(u64, Box<dyn Sink>)> = Vec::new();
        let mut next_id = 0u64;
        let mut push = |sink: Box<dyn Sink>, sinks: &mut Vec<(u64, Box<dyn Sink>)>| {
            sinks.push((next_id, sink));
            next_id += 1;
        };

        // Stderr verbosity: MICA_LOG, defaulting to info — or warn under
        // the legacy MICA_QUIET knob, which predates this crate.
        let stderr_level = match std::env::var("MICA_LOG") {
            Ok(v) => {
                let parsed = Level::parse(&v);
                if parsed.is_none() && !matches!(v.trim(), "off" | "none" | "0" | "") {
                    eprintln!("warning: unrecognized MICA_LOG={v:?}; logging is off");
                }
                parsed
            }
            Err(_) if std::env::var_os("MICA_QUIET").is_some() => Some(Level::Warn),
            Err(_) => Some(Level::Info),
        };
        if let Some(level) = stderr_level {
            push(Box::new(StderrSink::new(level)), &mut sinks);
        }
        if let Some(path) = std::env::var_os("MICA_TRACE") {
            push(Box::new(ChromeTraceSink::create(path.into())), &mut sinks);
        }
        if let Some(path) = std::env::var_os("MICA_EVENTS") {
            match JsonLinesSink::create(std::path::PathBuf::from(&path)) {
                Ok(sink) => push(Box::new(sink), &mut sinks),
                Err(e) => eprintln!("warning: cannot open MICA_EVENTS={path:?}: {e}"),
            }
        }

        recompute_caps(&sinks);
        // Deliberately last: the env reads above allocate, and the alloc
        // flag must stay off until they are done; the heartbeat thread
        // calls back into this state and blocks until init completes.
        alloc::init_from_env();
        heartbeat::init_from_env();
        State {
            sinks: RwLock::new(sinks),
            next_sink_id: AtomicU64::new(next_id),
            epoch: Instant::now(),
            thread_names: Mutex::new(BTreeMap::new()),
        }
    })
}

fn recompute_caps(sinks: &[(u64, Box<dyn Sink>)]) {
    let max = sinks
        .iter()
        .filter_map(|(_, s)| s.event_interest())
        .map(|l| l as u8)
        .max()
        .unwrap_or(0);
    let spans = sinks.iter().any(|(_, s)| s.wants_spans());
    MAX_LEVEL.store(max, Ordering::Release);
    SPANS_ON.store(spans, Ordering::Release);
}

/// Handle returned by [`add_sink`], for later [`remove_sink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkId(u64);

/// Install an additional sink (on top of whatever the environment
/// configured). Used by tests and by embedders that want programmatic
/// capture.
pub fn add_sink(sink: Box<dyn Sink>) -> SinkId {
    let s = state();
    let id = s.next_sink_id.fetch_add(1, Ordering::Relaxed);
    let mut sinks = s.sinks.write().expect("sink registry poisoned");
    sinks.push((id, sink));
    recompute_caps(&sinks);
    SinkId(id)
}

/// Remove (and flush) a sink installed by [`add_sink`] or by the
/// environment init. Returns whether the id was present.
pub fn remove_sink(id: SinkId) -> bool {
    let s = state();
    let mut sinks = s.sinks.write().expect("sink registry poisoned");
    let mut kept = Vec::with_capacity(sinks.len());
    let mut removed = Vec::new();
    for entry in sinks.drain(..) {
        if entry.0 == id.0 {
            removed.push(entry.1);
        } else {
            kept.push(entry);
        }
    }
    *sinks = kept;
    recompute_caps(&sinks);
    drop(sinks);
    for sink in &removed {
        sink.flush();
    }
    !removed.is_empty()
}

/// Flush every installed sink (file sinks buffer until flushed). Call at
/// the end of a run; the experiments' `Runner` does this.
pub fn flush() {
    let s = state();
    let sinks = s.sinks.read().expect("sink registry poisoned");
    for (_, sink) in sinks.iter() {
        sink.flush();
    }
}

/// Whether events at `level` currently reach any sink. The event macros
/// check this before formatting, so a disabled level costs one atomic
/// load.
pub fn enabled(level: Level) -> bool {
    let mut max = MAX_LEVEL.load(Ordering::Acquire);
    if max == UNINIT {
        state();
        max = MAX_LEVEL.load(Ordering::Acquire);
    }
    level as u8 <= max
}

/// Whether any installed sink records spans. When false, [`span`] returns
/// an inert guard without reading the clock.
pub fn spans_enabled() -> bool {
    if MAX_LEVEL.load(Ordering::Acquire) == UNINIT {
        state();
    }
    SPANS_ON.load(Ordering::Acquire)
}

/// Total (events, spans) delivered to sinks since process start — the
/// overhead tests assert these stay zero while observability is disabled.
pub fn dispatch_totals() -> (u64, u64) {
    (EVENTS_DISPATCHED.load(Ordering::Relaxed), SPANS_DISPATCHED.load(Ordering::Relaxed))
}

/// A cached boolean environment knob with the same disabled-cost contract
/// as [`enabled`]: after the first read, checking the flag is one atomic
/// load (two on the very first call, which runs the environment init).
///
/// The flag is *on* when the variable is set to any non-empty value other
/// than `0` — the convention every `MICA_*` boolean knob follows. Declare
/// one as a static:
///
/// ```
/// static MY_FLAG: mica_obs::EnvFlag = mica_obs::EnvFlag::new("MICA_EXAMPLE");
/// assert!(!MY_FLAG.enabled() || std::env::var("MICA_EXAMPLE").is_ok());
/// ```
pub struct EnvFlag {
    var: &'static str,
    /// `FLAG_UNINIT` until first read, then 0 (off) or 1 (on).
    state: AtomicU8,
}

const FLAG_UNINIT: u8 = u8::MAX;

impl EnvFlag {
    /// A flag backed by environment variable `var`, not yet read.
    pub const fn new(var: &'static str) -> EnvFlag {
        EnvFlag { var, state: AtomicU8::new(FLAG_UNINIT) }
    }

    /// The variable this flag reads.
    pub fn var(&self) -> &'static str {
        self.var
    }

    /// Whether the flag is on. Reads the environment once, on the first
    /// call; afterwards this is a single atomic load.
    pub fn enabled(&self) -> bool {
        let mut s = self.state.load(Ordering::Acquire);
        if s == FLAG_UNINIT {
            let on = std::env::var(self.var).is_ok_and(|v| !v.is_empty() && v != "0");
            s = u8::from(on);
            // A racing first read computes the same value; last store wins
            // harmlessly.
            self.state.store(s, Ordering::Release);
        }
        s == 1
    }

    /// Force the cached value, bypassing the environment — for tests that
    /// must not race other threads on `set_var`.
    pub fn force(&self, on: bool) {
        self.state.store(u8::from(on), Ordering::Release);
    }

    /// Drop the cache so the next [`EnvFlag::enabled`] re-reads the
    /// environment.
    pub fn reset(&self) {
        self.state.store(FLAG_UNINIT, Ordering::Release);
    }
}

fn now_us() -> u64 {
    state().epoch.elapsed().as_micros() as u64
}

/// Microseconds since the process-wide observability epoch — the same
/// clock every [`SpanRecord::ts_us`] uses. Callers that synthesize spans
/// with explicit start times ([`emit_span_record`]) read it to stamp
/// their timestamps in the same timeline.
pub fn timestamp_us() -> u64 {
    now_us()
}

// ---------------------------------------------------------------------------
// Thread identity
// ---------------------------------------------------------------------------

/// Anonymous (non-worker, non-main) threads get ids from 1000 up so they
/// can never collide with `set_worker` ids.
static NEXT_ANON_TID: AtomicU64 = AtomicU64::new(1000);

thread_local! {
    static TID: Cell<u64> = const { Cell::new(u64::MAX) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn register_thread_name(tid: u64, name: String) {
    let mut names = state().thread_names.lock().expect("thread names poisoned");
    names.entry(tid).or_insert(name);
}

/// The calling thread's logical id: 0 for the main thread, `1 + index`
/// for pool workers that called [`set_worker`], 1000+ for anything else.
pub fn current_tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != u64::MAX {
            return v;
        }
        let current = std::thread::current();
        let id = if current.name() == Some("main") {
            0
        } else {
            NEXT_ANON_TID.fetch_add(1, Ordering::Relaxed)
        };
        register_thread_name(
            id,
            match current.name() {
                Some(n) => n.to_string(),
                None => format!("thread-{id}"),
            },
        );
        t.set(id);
        id
    })
}

/// Claim logical thread id `1 + index` for the calling thread and name it
/// `worker-<index>`. The `mica-par` pool calls this as each worker starts,
/// so every `par_map` invocation reuses the same small set of Chrome-trace
/// tracks instead of minting a fresh track per spawned thread.
pub fn set_worker(index: usize) {
    let id = 1 + index as u64;
    TID.with(|t| t.set(id));
    register_thread_name(id, format!("worker-{index}"));
}

/// Claim a *stable* logical thread id for a long-lived service thread
/// (daemon dispatcher, watchdog, accept loop) and name its trace track.
/// Slots are caller-assigned and map to tids `900 + slot`, a range
/// disjoint from the main thread (0), pool workers (1+) and anonymous
/// threads (1000+), so the same service lands on the same Chrome-trace
/// track in every run. Callers must use distinct slots for distinct
/// services; `slot` is clamped below 100 to keep the range closed.
pub fn set_service_thread(slot: u64, name: &str) {
    let id = 900 + slot.min(99);
    TID.with(|t| t.set(id));
    let mut names = state().thread_names.lock().expect("thread names poisoned");
    names.insert(id, name.to_string());
}

/// Snapshot of every (tid, name) seen so far, ascending by tid. The
/// Chrome-trace sink turns this into `thread_name` metadata at flush.
pub fn thread_names() -> Vec<(u64, String)> {
    state()
        .thread_names
        .lock()
        .expect("thread names poisoned")
        .iter()
        .map(|(k, v)| (*k, v.clone()))
        .collect()
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Emit a leveled event with no attributes. Prefer the [`info!`]-style
/// macros, which skip formatting when the level is disabled.
pub fn emit(level: Level, target: &'static str, message: String) {
    emit_with(level, target, message, Vec::new());
}

/// Emit a leveled event with structured attributes.
pub fn emit_with(
    level: Level,
    target: &'static str,
    message: String,
    attrs: Vec<(&'static str, Attr)>,
) {
    if !enabled(level) {
        return;
    }
    let event = Event { ts_us: now_us(), tid: current_tid(), level, target, message, attrs };
    EVENTS_DISPATCHED.fetch_add(1, Ordering::Relaxed);
    let sinks = state().sinks.read().expect("sink registry poisoned");
    for (_, sink) in sinks.iter() {
        if sink.event_interest().is_some_and(|max| level <= max) {
            sink.on_event(&event);
        }
    }
}

/// Emit an [`Level::Error`] event; `mica_obs::error!("...", args)`.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Error) {
            $crate::emit($crate::Level::Error, module_path!(), format!($($arg)*));
        }
    };
}

/// Emit a [`Level::Warn`] event; `mica_obs::warn!("...", args)`.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Warn) {
            $crate::emit($crate::Level::Warn, module_path!(), format!($($arg)*));
        }
    };
}

/// Emit an [`Level::Info`] event; `mica_obs::info!("...", args)`.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Info) {
            $crate::emit($crate::Level::Info, module_path!(), format!($($arg)*));
        }
    };
}

/// Emit a [`Level::Debug`] event; `mica_obs::debug!("...", args)`.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Debug) {
            $crate::emit($crate::Level::Debug, module_path!(), format!($($arg)*));
        }
    };
}

/// Emit a [`Level::Trace`] event; `mica_obs::trace!("...", args)`.
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Trace) {
            $crate::emit($crate::Level::Trace, module_path!(), format!($($arg)*));
        }
    };
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct SpanInner {
    cat: &'static str,
    name: String,
    ts_us: u64,
    tid: u64,
    depth: u32,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    /// The thread's context before this span installed itself; restored
    /// at close.
    prev_ctx: Option<TraceContext>,
    attrs: Vec<(&'static str, Attr)>,
    /// Thread (allocations, bytes) at open time, when `MICA_ALLOC`
    /// tracking was on; the close attaches the delta as `alloc_n` /
    /// `alloc_b` attributes (inclusive of children).
    alloc0: Option<(u64, u64)>,
}

/// RAII guard for a timed span. Created by [`span`]; the span closes (and
/// is delivered to sinks) when the guard drops. Guards must drop in LIFO
/// order on a given thread — the natural consequence of holding them in
/// local scopes.
#[must_use = "a span closes when its guard drops; binding it to _ closes it immediately"]
pub struct Span(Option<SpanInner>);

/// Open a span. When no installed sink records spans this returns an
/// inert guard without touching the clock or the thread-local stack.
pub fn span(cat: &'static str, name: impl Into<String>) -> Span {
    if !spans_enabled() {
        return Span(None);
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    let (trace_id, span_id, parent_id, prev_ctx) = context::enter_span();
    Span(Some(SpanInner {
        cat,
        name: name.into(),
        ts_us: now_us(),
        tid: current_tid(),
        depth,
        trace_id,
        span_id,
        parent_id,
        prev_ctx,
        attrs: Vec::new(),
        alloc0: alloc::enabled().then(alloc::thread_totals),
    }))
}

impl Span {
    /// Attach a structured attribute (recorded at close). No-op on an
    /// inert guard, so callers can compute attribute values cheaply and
    /// unconditionally.
    pub fn attr(&mut self, key: &'static str, value: impl Into<Attr>) {
        if let Some(inner) = &mut self.0 {
            inner.attrs.push((key, value.into()));
        }
    }

    /// Whether this guard will produce a record (false when spans were
    /// disabled at open time). Lets callers skip *expensive* attribute
    /// computation.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(mut inner) = self.0.take() else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        context::exit_span(inner.prev_ctx);
        if let Some((n0, b0)) = inner.alloc0 {
            let (n1, b1) = alloc::thread_totals();
            inner.attrs.push(("alloc_n", Attr::U64(n1.saturating_sub(n0))));
            inner.attrs.push(("alloc_b", Attr::U64(b1.saturating_sub(b0))));
        }
        // End time comes from the same epoch clock as the start, so a
        // child's [ts, ts+dur] interval is always contained in its
        // parent's — truncating two different clock reads could put a
        // child's end 1us past its parent's.
        let record = SpanRecord {
            ts_us: inner.ts_us,
            dur_us: now_us().saturating_sub(inner.ts_us),
            tid: inner.tid,
            depth: inner.depth,
            trace_id: inner.trace_id,
            span_id: inner.span_id,
            parent_id: inner.parent_id,
            cat: inner.cat,
            name: inner.name,
            attrs: inner.attrs,
        };
        emit_span_record(record);
    }
}

/// Deliver a pre-built [`SpanRecord`] to every span-recording sink.
///
/// This is the escape hatch for *synthetic* spans whose lifetime does not
/// match a lexical scope — e.g. the serve daemon's per-request root span,
/// which opens at admission on one thread and closes after the response
/// is written on another. The caller supplies explicit `ts_us` (from
/// [`timestamp_us`]) and ids (from [`TraceContext::fresh`] /
/// [`next_span_id`]); nothing is added or checked. No-op when spans are
/// disabled.
pub fn emit_span_record(record: SpanRecord) {
    if !spans_enabled() {
        return;
    }
    SPANS_DISPATCHED.fetch_add(1, Ordering::Relaxed);
    let sinks = state().sinks.read().expect("sink registry poisoned");
    for (_, sink) in sinks.iter() {
        if sink.wants_spans() {
            sink.on_span(&record);
        }
    }
}

// ---------------------------------------------------------------------------
// JSON rendering helpers (shared by the file sinks)
// ---------------------------------------------------------------------------

/// Append `s` to `out` as a JSON string literal.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an [`Attr`] to `out` as a JSON value.
pub(crate) fn push_json_attr(out: &mut String, attr: &Attr) {
    match attr {
        Attr::U64(v) => out.push_str(&v.to_string()),
        Attr::I64(v) => out.push_str(&v.to_string()),
        Attr::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
        Attr::F64(_) => out.push_str("null"),
        Attr::Str(s) => push_json_str(out, s),
        Attr::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
    }
}

/// Append `attrs` to `out` as a JSON object.
pub(crate) fn push_json_attrs(out: &mut String, attrs: &[(&'static str, Attr)]) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_json_attr(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("TRACE"), Some(Level::Trace));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn attr_conversions_render() {
        let attrs: Vec<Attr> =
            vec![7u64.into(), (-3i64).into(), 1.5f64.into(), "x".into(), true.into()];
        let rendered: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
        assert_eq!(rendered, ["7", "-3", "1.5", "x", "true"]);
    }

    #[test]
    fn json_string_escaping() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\n\u{01}");
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn json_attrs_object() {
        let mut out = String::new();
        push_json_attrs(
            &mut out,
            &[("n", Attr::U64(3)), ("bad", Attr::F64(f64::NAN)), ("ok", Attr::Bool(false))],
        );
        assert_eq!(out, "{\"n\":3,\"bad\":null,\"ok\":false}");
    }

    #[test]
    fn memory_sink_captures_events_and_spans() {
        let sink = MemorySink::new();
        let id = add_sink(Box::new(sink.clone()));
        emit_with(
            Level::Info,
            "obs::test::capture",
            "hello".into(),
            vec![("k", Attr::U64(1))],
        );
        {
            let mut s = span("obs-test-capture", "outer");
            s.attr("inner", 0u64);
            let _inner = span("obs-test-capture", "inner");
        }
        remove_sink(id);
        let events: Vec<Event> =
            sink.events().into_iter().filter(|e| e.target == "obs::test::capture").collect();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "hello");
        assert_eq!(events[0].attrs, vec![("k", Attr::U64(1))]);
        let spans: Vec<SpanRecord> =
            sink.spans().into_iter().filter(|s| s.cat == "obs-test-capture").collect();
        assert_eq!(spans.len(), 2);
        // Inner closes first and sits one level deeper on the same thread.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[0].depth, spans[1].depth + 1);
        assert_eq!(spans[0].tid, spans[1].tid);
        // Inner is contained in outer.
        assert!(spans[0].ts_us >= spans[1].ts_us);
        assert!(spans[0].ts_us + spans[0].dur_us <= spans[1].ts_us + spans[1].dur_us);
    }

    #[test]
    fn spans_record_connected_context_ids() {
        let sink = MemorySink::new();
        let id = add_sink(Box::new(sink.clone()));
        let root = TraceContext::fresh();
        {
            let _g = install_context(Some(root));
            let _outer = span("obs-test-ctx", "outer");
            let _inner = span("obs-test-ctx", "inner");
        }
        let _stray = span("obs-test-ctx", "stray");
        drop(_stray);
        remove_sink(id);
        let spans: Vec<SpanRecord> =
            sink.spans().into_iter().filter(|s| s.cat == "obs-test-ctx").collect();
        assert_eq!(spans.len(), 3);
        let (inner, outer, stray) = (&spans[0], &spans[1], &spans[2]);
        assert_eq!(outer.trace_id, root.trace_id);
        assert_eq!(outer.parent_id, root.span_id, "outer parents to the installed context");
        assert_eq!(inner.trace_id, root.trace_id);
        assert_eq!(inner.parent_id, outer.span_id, "inner parents to outer");
        assert_ne!(inner.span_id, outer.span_id);
        // Outside the guard the thread is untraced again.
        assert_eq!(stray.trace_id, 0);
        assert_eq!(stray.parent_id, 0);
        assert_ne!(stray.span_id, 0);
    }

    #[test]
    fn synthetic_span_records_reach_sinks_verbatim() {
        let sink = MemorySink::new();
        let id = add_sink(Box::new(sink.clone()));
        let ctx = TraceContext::fresh();
        let ts = timestamp_us();
        emit_span_record(SpanRecord {
            ts_us: ts,
            dur_us: 42,
            tid: 900,
            depth: 0,
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: 0,
            cat: "obs-test-synth",
            name: "request".to_string(),
            attrs: vec![("outcome", Attr::Str("ok".to_string()))],
        });
        remove_sink(id);
        let spans: Vec<SpanRecord> =
            sink.spans().into_iter().filter(|s| s.cat == "obs-test-synth").collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].ts_us, ts);
        assert_eq!(spans[0].dur_us, 42);
        assert_eq!(spans[0].trace_id, ctx.trace_id);
        assert_eq!(spans[0].span_id, ctx.span_id);
    }

    #[test]
    fn removing_a_sink_stops_delivery() {
        let sink = MemorySink::new();
        let id = add_sink(Box::new(sink.clone()));
        assert!(remove_sink(id));
        assert!(!remove_sink(id), "second removal reports absence");
        emit(Level::Info, "obs::test::removed", "dropped".into());
        assert!(sink.events().iter().all(|e| e.target != "obs::test::removed"));
    }

    #[test]
    fn env_flag_caches_and_follows_the_boolean_convention() {
        // Set-var-based coverage is confined to one variable no other test
        // reads, and reset() re-reads between mutations.
        static FLAG: EnvFlag = EnvFlag::new("MICA_OBS_ENVFLAG_TEST");
        assert_eq!(FLAG.var(), "MICA_OBS_ENVFLAG_TEST");
        std::env::remove_var("MICA_OBS_ENVFLAG_TEST");
        FLAG.reset();
        assert!(!FLAG.enabled(), "unset is off");
        for (value, expect) in [("0", false), ("", false), ("1", true), ("yes", true)] {
            std::env::set_var("MICA_OBS_ENVFLAG_TEST", value);
            FLAG.reset();
            assert_eq!(FLAG.enabled(), expect, "value {value:?}");
        }
        // The cache sticks: flipping the environment without reset() does
        // not change the answer.
        std::env::set_var("MICA_OBS_ENVFLAG_TEST", "0");
        assert!(FLAG.enabled(), "cached value survives env churn");
        FLAG.force(false);
        assert!(!FLAG.enabled(), "force overrides");
        std::env::remove_var("MICA_OBS_ENVFLAG_TEST");
        FLAG.reset();
    }
}

//! JSON-lines recorder: one self-describing JSON object per line, events
//! and spans interleaved in dispatch order — the machine-readable twin of
//! the stderr log (`MICA_EVENTS=out.jsonl`).
//!
//! Schema (one of two shapes per line):
//!
//! ```json
//! {"t":"event","ts_us":123,"tid":0,"level":"info","target":"…","msg":"…","attrs":{…}}
//! {"t":"span","ts_us":120,"dur_us":15,"tid":1,"depth":0,"cat":"…","name":"…","attrs":{…}}
//! ```

use crate::{push_json_attrs, push_json_str, Event, Sink, SpanRecord};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::sync::Mutex;

/// Buffered JSON-lines writer; finalized by [`Sink::flush`].
pub struct JsonLinesSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonLinesSink {
    /// Create (truncating) the output file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: PathBuf) -> io::Result<JsonLinesSink> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        Ok(JsonLinesSink { out: Mutex::new(BufWriter::new(File::create(path)?)) })
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().expect("jsonl writer poisoned");
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
    }
}

impl Sink for JsonLinesSink {
    fn on_event(&self, event: &Event) {
        let mut line = String::with_capacity(96 + event.message.len());
        line.push_str("{\"t\":\"event\",\"ts_us\":");
        line.push_str(&event.ts_us.to_string());
        line.push_str(",\"tid\":");
        line.push_str(&event.tid.to_string());
        line.push_str(",\"level\":\"");
        line.push_str(event.level.lower());
        line.push_str("\",\"target\":");
        push_json_str(&mut line, event.target);
        line.push_str(",\"msg\":");
        push_json_str(&mut line, &event.message);
        line.push_str(",\"attrs\":");
        push_json_attrs(&mut line, &event.attrs);
        line.push('}');
        self.write_line(&line);
    }

    fn on_span(&self, span: &SpanRecord) {
        let mut line = String::with_capacity(96 + span.name.len());
        line.push_str("{\"t\":\"span\",\"ts_us\":");
        line.push_str(&span.ts_us.to_string());
        line.push_str(",\"dur_us\":");
        line.push_str(&span.dur_us.to_string());
        line.push_str(",\"tid\":");
        line.push_str(&span.tid.to_string());
        line.push_str(",\"depth\":");
        line.push_str(&span.depth.to_string());
        line.push_str(",\"cat\":");
        push_json_str(&mut line, span.cat);
        line.push_str(",\"name\":");
        push_json_str(&mut line, &span.name);
        line.push_str(",\"attrs\":");
        push_json_attrs(&mut line, &span.attrs);
        line.push('}');
        self.write_line(&line);
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl writer poisoned").flush();
    }
}

//! JSON-lines recorder: one self-describing JSON object per line, events
//! and spans interleaved in dispatch order — the machine-readable twin of
//! the stderr log (`MICA_EVENTS=out.jsonl`).
//!
//! Schema (one of three shapes per line; `flush` is always last):
//!
//! ```json
//! {"t":"event","ts_us":123,"tid":0,"level":"info","target":"…","msg":"…","attrs":{…}}
//! {"t":"span","ts_us":120,"dur_us":15,"tid":1,"depth":0,"trace":7,"span":9,"parent":8,"cat":"…","name":"…","attrs":{…}}
//! {"t":"flush","events":41,"spans":128,"dropped_lines":0}
//! ```
//!
//! `trace`/`span`/`parent` are the propagated [`crate::TraceContext`]
//! ids (0 = untraced / root); consumers can rebuild each request's span
//! tree without relying on interval containment.
//!
//! Lines are buffered in memory and the whole file is rewritten atomically
//! (temp-then-rename with bounded retry, via `mica_fault::io`) on each
//! [`Sink::flush`] — a reader never sees a line cut in half, and a failed
//! final write is *counted* (`obs.events.dropped_lines`) instead of
//! silently losing records, which is what the previous streaming writer
//! did with its discarded `write_all` results.
//!
//! Every flushed file ends with one summary record,
//!
//! ```json
//! {"t":"flush","events":N,"spans":M,"dropped_lines":D}
//! ```
//!
//! so a consumer (`mica-prof`) can prove the stream is complete: a file
//! with no `flush` line was truncated mid-run, and `dropped_lines > 0`
//! means an earlier flush lost records — either way the analysis reports
//! the gap instead of silently under-counting.

use crate::{push_json_attrs, push_json_str, Counter, Event, Sink, SpanRecord};
use std::fs::File;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Event/span lines lost because a flush failed even after retries.
static DROPPED_LINES: Counter = Counter::new("obs.events.dropped_lines");

/// Buffered JSON-lines writer; finalized by [`Sink::flush`].
pub struct JsonLinesSink {
    path: PathBuf,
    /// Pre-rendered lines in dispatch order.
    lines: Mutex<Vec<String>>,
    /// Event and span line counts, for the final `flush` record.
    events: AtomicU64,
    spans: AtomicU64,
}

impl JsonLinesSink {
    /// Create (truncating) the output file. The eager create validates the
    /// path up front — a run with a bad `MICA_EVENTS` fails at startup,
    /// not at the final flush.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: PathBuf) -> io::Result<JsonLinesSink> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        File::create(&path)?;
        Ok(JsonLinesSink {
            path,
            lines: Mutex::new(Vec::new()),
            events: AtomicU64::new(0),
            spans: AtomicU64::new(0),
        })
    }

    fn push_line(&self, line: String) {
        self.lines.lock().expect("jsonl buffer poisoned").push(line);
    }
}

impl Sink for JsonLinesSink {
    fn on_event(&self, event: &Event) {
        let mut line = String::with_capacity(96 + event.message.len());
        line.push_str("{\"t\":\"event\",\"ts_us\":");
        line.push_str(&event.ts_us.to_string());
        line.push_str(",\"tid\":");
        line.push_str(&event.tid.to_string());
        line.push_str(",\"level\":\"");
        line.push_str(event.level.lower());
        line.push_str("\",\"target\":");
        push_json_str(&mut line, event.target);
        line.push_str(",\"msg\":");
        push_json_str(&mut line, &event.message);
        line.push_str(",\"attrs\":");
        push_json_attrs(&mut line, &event.attrs);
        line.push('}');
        self.events.fetch_add(1, Ordering::Relaxed);
        self.push_line(line);
    }

    fn on_span(&self, span: &SpanRecord) {
        let mut line = String::with_capacity(96 + span.name.len());
        line.push_str("{\"t\":\"span\",\"ts_us\":");
        line.push_str(&span.ts_us.to_string());
        line.push_str(",\"dur_us\":");
        line.push_str(&span.dur_us.to_string());
        line.push_str(",\"tid\":");
        line.push_str(&span.tid.to_string());
        line.push_str(",\"depth\":");
        line.push_str(&span.depth.to_string());
        line.push_str(",\"trace\":");
        line.push_str(&span.trace_id.to_string());
        line.push_str(",\"span\":");
        line.push_str(&span.span_id.to_string());
        line.push_str(",\"parent\":");
        line.push_str(&span.parent_id.to_string());
        line.push_str(",\"cat\":");
        push_json_str(&mut line, span.cat);
        line.push_str(",\"name\":");
        push_json_str(&mut line, &span.name);
        line.push_str(",\"attrs\":");
        push_json_attrs(&mut line, &span.attrs);
        line.push('}');
        self.spans.fetch_add(1, Ordering::Relaxed);
        self.push_line(line);
    }

    fn flush(&self) {
        let lines = self.lines.lock().expect("jsonl buffer poisoned");
        let mut out =
            String::with_capacity(lines.iter().map(|l| l.len() + 1).sum::<usize>() + 64);
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        // The terminating flush record is rendered fresh on every flush
        // (not buffered), so repeated flushes keep exactly one at the end.
        out.push_str(&format!(
            "{{\"t\":\"flush\",\"events\":{},\"spans\":{},\"dropped_lines\":{}}}\n",
            self.events.load(Ordering::Relaxed),
            self.spans.load(Ordering::Relaxed),
            DROPPED_LINES.get(),
        ));
        if let Err(e) = mica_fault::io::atomic_write_retry("obs.events", &self.path, out.as_bytes())
        {
            DROPPED_LINES.add(lines.len() as u64);
            eprintln!(
                "warning: cannot write events file {}: {e} ({} lines dropped)",
                self.path.display(),
                lines.len()
            );
        }
    }
}

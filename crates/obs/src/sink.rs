//! The [`Sink`] trait plus the stderr and in-memory implementations.

use crate::{Event, Level, SpanRecord};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Receives events and closed spans from the global dispatch. All methods
/// take `&self` — sinks handle their own interior mutability — and must be
/// cheap enough to call from worker threads.
pub trait Sink: Send + Sync {
    /// The most verbose event level this sink wants, or `None` for no
    /// events at all. The global fast path is the max over all sinks.
    fn event_interest(&self) -> Option<Level> {
        Some(Level::Trace)
    }

    /// Whether this sink records closed spans. Span creation is skipped
    /// entirely when no sink wants them.
    fn wants_spans(&self) -> bool {
        true
    }

    /// Deliver one event (already filtered by [`Sink::event_interest`]).
    fn on_event(&self, event: &Event);

    /// Deliver one closed span.
    fn on_span(&self, span: &SpanRecord);

    /// Finalize buffered output. Called by [`crate::flush`] and when the
    /// sink is removed.
    fn flush(&self) {}
}

/// Human-readable leveled logger on stderr — the `MICA_LOG` sink.
///
/// Events print as `[  12.345s LEVEL target] message (k=v, ...)`. Spans
/// print only at `trace` verbosity (they flood below that, and the file
/// sinks are the right tool for span analysis).
pub struct StderrSink {
    level: Level,
}

impl StderrSink {
    /// A stderr logger at the given verbosity.
    pub fn new(level: Level) -> StderrSink {
        StderrSink { level }
    }
}

fn render_attrs(attrs: &[(&'static str, crate::Attr)]) -> String {
    if attrs.is_empty() {
        return String::new();
    }
    let body: Vec<String> = attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!(" ({})", body.join(", "))
}

impl Sink for StderrSink {
    fn event_interest(&self) -> Option<Level> {
        Some(self.level)
    }

    fn wants_spans(&self) -> bool {
        self.level >= Level::Trace
    }

    fn on_event(&self, event: &Event) {
        let secs = event.ts_us as f64 / 1e6;
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "[{secs:9.3}s {:5} {}] {}{}",
            event.level.as_str(),
            event.target,
            event.message,
            render_attrs(&event.attrs),
        );
    }

    fn on_span(&self, span: &SpanRecord) {
        let secs = span.ts_us as f64 / 1e6;
        let mut err = std::io::stderr().lock();
        let _ = writeln!(
            err,
            "[{secs:9.3}s SPAN  {}] {} took {}us on tid {}{}",
            span.cat,
            span.name,
            span.dur_us,
            span.tid,
            render_attrs(&span.attrs),
        );
    }
}

/// One captured record, in dispatch order.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A leveled event.
    Event(Event),
    /// A closed span.
    Span(SpanRecord),
}

/// A capture sink for tests: clone the handle, install one clone with
/// [`crate::add_sink`], and read records back through the other.
#[derive(Clone, Default)]
pub struct MemorySink {
    records: Arc<Mutex<Vec<Record>>>,
}

impl MemorySink {
    /// An empty capture sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Every record captured so far, in dispatch order.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("capture buffer poisoned").clone()
    }

    /// Only the captured events.
    pub fn events(&self) -> Vec<Event> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Event(e) => Some(e),
                Record::Span(_) => None,
            })
            .collect()
    }

    /// Only the captured spans, in close order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                Record::Event(_) => None,
            })
            .collect()
    }

    /// Drop everything captured so far.
    pub fn clear(&self) {
        self.records.lock().expect("capture buffer poisoned").clear();
    }
}

impl Sink for MemorySink {
    fn on_event(&self, event: &Event) {
        self.records.lock().expect("capture buffer poisoned").push(Record::Event(event.clone()));
    }

    fn on_span(&self, span: &SpanRecord) {
        self.records.lock().expect("capture buffer poisoned").push(Record::Span(span.clone()));
    }
}
